//! Recursive-descent parser for the supported Verilog subset.
//!
//! Supported: ANSI and non-ANSI module headers, `wire`/`reg`/`integer`
//! declarations with descending constant ranges, `parameter`/`localparam`,
//! continuous assignments, `always`/`initial` with the full procedural
//! statement subset (blocking/non-blocking assignment, `if`, `case`/`casez`/
//! `casex`, `for`, `while`, `repeat`, `forever`, delays, event controls,
//! system tasks), module instantiation with ordered or named connections,
//! and the full expression grammar with Verilog operator precedence.
//!
//! Not supported (rejected with a [`ParseError`]): `generate`, functions,
//! tasks, ascending ranges in declarations, parameterised instantiation.

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::lexer::{lex, Keyword, NumberLit, Punct, SpannedToken, Token};

/// Parses a complete source file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; generated-code callers
/// (AutoEval's Eval0) treat any error as "code has syntax errors".
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "module top(input a, output y); assign y = ~a; endmodule";
/// let file = correctbench_verilog::parse(src)?;
/// assert_eq!(file.modules[0].name, "top");
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<SourceFile, ParseError> {
    let _span = correctbench_obs::span(correctbench_obs::Phase::Parse);
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut modules = Vec::new();
    while !p.at_end() {
        modules.push(p.module()?);
    }
    Ok(SourceFile::new(modules))
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn span(&self) -> Span {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or_else(Span::default, |t| t.span)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_at(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n).map(|t| &t.token)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.span(), msg)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.peek() == Some(&Token::Punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{p}`, found {}",
                self.peek()
                    .map_or("end of input".to_string(), |t| format!("`{t}`"))
            )))
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek() == Some(&Token::Keyword(k)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{k}`, found {}",
                self.peek()
                    .map_or("end of input".to_string(), |t| format!("`{t}`"))
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                let Some(Token::Ident(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(s)
            }
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other.map_or("end of input".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }

    fn expect_number(&mut self) -> Result<NumberLit, ParseError> {
        match self.peek() {
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(n)
            }
            other => Err(self.err(format!(
                "expected number, found {}",
                other.map_or("end of input".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }

    fn const_int(&mut self) -> Result<i64, ParseError> {
        // Constant integer with optional leading minus (for ranges).
        // Bounds are clamped to ±2^31 so downstream width arithmetic
        // (`msb - lsb`, `lsb` rebasing) can never overflow an i64.
        let neg = self.eat_punct(Punct::Minus);
        let n = self.expect_number()?;
        let v = n
            .value
            .to_u64()
            .ok_or_else(|| self.err("range bound must be a known constant"))?;
        if v > 1 << 31 {
            return Err(self.err("range bound out of range"));
        }
        let v = v as i64;
        Ok(if neg { -v } else { v })
    }

    // ---- modules ----

    fn module(&mut self) -> Result<Module, ParseError> {
        self.expect_keyword(Keyword::Module)?;
        let name = self.expect_ident()?;
        let mut port_order = Vec::new();
        let mut ports: Vec<PortDecl> = Vec::new();
        if self.eat_punct(Punct::LParen) && !self.eat_punct(Punct::RParen) {
            loop {
                self.port_entry(&mut port_order, &mut ports)?;
                if self.eat_punct(Punct::Comma) {
                    continue;
                }
                self.expect_punct(Punct::RParen)?;
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        let mut items = Vec::new();
        loop {
            if self.eat_keyword(Keyword::Endmodule) {
                break;
            }
            if self.at_end() {
                return Err(self.err("missing `endmodule`"));
            }
            self.item(&mut items, &mut ports, &port_order)?;
        }
        Ok(Module {
            name,
            port_order,
            ports,
            items,
        })
    }

    /// One entry of a module header: either a bare name (non-ANSI) or an
    /// ANSI declaration. ANSI declarations without a direction keyword
    /// reuse the previous entry's direction/type (`input a, b`).
    fn port_entry(
        &mut self,
        order: &mut Vec<String>,
        ports: &mut Vec<PortDecl>,
    ) -> Result<(), ParseError> {
        let dir = if self.eat_keyword(Keyword::Input) {
            Some(Direction::Input)
        } else if self.eat_keyword(Keyword::Output) {
            Some(Direction::Output)
        } else if self.peek() == Some(&Token::Keyword(Keyword::Inout)) {
            return Err(self.err("inout ports are not supported"));
        } else {
            None
        };
        match dir {
            None => {
                // Non-ANSI: just a name; the declaration appears in the body.
                let name = self.expect_ident()?;
                order.push(name);
                Ok(())
            }
            Some(dir) => {
                let net = if self.eat_keyword(Keyword::Reg) {
                    NetKind::Reg
                } else {
                    self.eat_keyword(Keyword::Wire);
                    NetKind::Wire
                };
                let signed = self.eat_keyword(Keyword::Signed);
                let range = self.opt_range()?;
                let name = self.expect_ident()?;
                order.push(name.clone());
                ports.push(PortDecl {
                    name,
                    dir,
                    net,
                    signed,
                    range,
                });
                // Additional names share the declaration until the next
                // direction keyword.
                while self.peek() == Some(&Token::Punct(Punct::Comma))
                    && matches!(self.peek_at(1), Some(Token::Ident(_)))
                {
                    self.bump(); // comma
                    let name = self.expect_ident()?;
                    order.push(name.clone());
                    ports.push(PortDecl {
                        name,
                        dir,
                        net,
                        signed,
                        range,
                    });
                }
                Ok(())
            }
        }
    }

    fn opt_range(&mut self) -> Result<Option<Range>, ParseError> {
        if !self.eat_punct(Punct::LBracket) {
            return Ok(None);
        }
        let msb = self.const_int()?;
        self.expect_punct(Punct::Colon)?;
        let lsb = self.const_int()?;
        self.expect_punct(Punct::RBracket)?;
        if msb < lsb {
            return Err(self.err("ascending ranges are not supported"));
        }
        Ok(Some(Range { msb, lsb }))
    }

    fn item(
        &mut self,
        items: &mut Vec<Item>,
        ports: &mut Vec<PortDecl>,
        port_order: &[String],
    ) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Input)) | Some(Token::Keyword(Keyword::Output)) => {
                self.non_ansi_port_decl(ports, port_order)
            }
            Some(Token::Keyword(Keyword::Wire)) => {
                self.bump();
                let d = self.net_decl(NetKind::Wire)?;
                items.push(Item::Net(d));
                Ok(())
            }
            Some(Token::Keyword(Keyword::Reg)) => {
                self.bump();
                let d = self.net_decl(NetKind::Reg)?;
                items.push(Item::Net(d));
                Ok(())
            }
            Some(Token::Keyword(Keyword::Integer)) => {
                self.bump();
                let d = self.net_decl(NetKind::Integer)?;
                items.push(Item::Net(d));
                Ok(())
            }
            Some(Token::Keyword(Keyword::Parameter)) => {
                self.bump();
                self.param_decl(false, items)
            }
            Some(Token::Keyword(Keyword::Localparam)) => {
                self.bump();
                self.param_decl(true, items)
            }
            Some(Token::Keyword(Keyword::Assign)) => {
                self.bump();
                loop {
                    let lhs = self.lvalue()?;
                    self.expect_punct(Punct::Assign)?;
                    let rhs = self.expr()?;
                    items.push(Item::Assign(AssignItem { lhs, rhs }));
                    if !self.eat_punct(Punct::Comma) {
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(())
            }
            Some(Token::Keyword(Keyword::Always)) => {
                self.bump();
                let event = if self.eat_punct(Punct::At) {
                    Some(self.event_control()?)
                } else {
                    None
                };
                let body = self.stmt()?;
                items.push(Item::Always(AlwaysBlock { event, body }));
                Ok(())
            }
            Some(Token::Keyword(Keyword::Initial)) => {
                self.bump();
                let body = self.stmt()?;
                items.push(Item::Initial(body));
                Ok(())
            }
            Some(Token::Ident(_)) => {
                // Module instantiation: `mod inst ( ... );`
                let module = self.expect_ident()?;
                let name = self.expect_ident()?;
                self.expect_punct(Punct::LParen)?;
                let conns = self.connections()?;
                self.expect_punct(Punct::RParen)?;
                self.expect_punct(Punct::Semi)?;
                items.push(Item::Instance(Instance {
                    module,
                    name,
                    conns,
                }));
                Ok(())
            }
            Some(Token::Keyword(k @ (Keyword::Function | Keyword::Generate | Keyword::Genvar))) => {
                Err(self.err(format!("`{k}` is not supported")))
            }
            other => Err(self.err(format!(
                "unexpected token in module body: {}",
                other.map_or("end of input".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }

    fn non_ansi_port_decl(
        &mut self,
        ports: &mut Vec<PortDecl>,
        port_order: &[String],
    ) -> Result<(), ParseError> {
        let dir = if self.eat_keyword(Keyword::Input) {
            Direction::Input
        } else {
            self.expect_keyword(Keyword::Output)?;
            Direction::Output
        };
        let net = if self.eat_keyword(Keyword::Reg) {
            NetKind::Reg
        } else {
            self.eat_keyword(Keyword::Wire);
            NetKind::Wire
        };
        let signed = self.eat_keyword(Keyword::Signed);
        let range = self.opt_range()?;
        loop {
            let name = self.expect_ident()?;
            if !port_order.iter().any(|p| p == &name) {
                return Err(self.err(format!("`{name}` is not listed in the module header")));
            }
            ports.push(PortDecl {
                name,
                dir,
                net,
                signed,
                range,
            });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn net_decl(&mut self, kind: NetKind) -> Result<NetDecl, ParseError> {
        let signed = self.eat_keyword(Keyword::Signed);
        let range = if kind == NetKind::Integer {
            Some(Range { msb: 31, lsb: 0 })
        } else {
            self.opt_range()?
        };
        let mut names = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let init = if self.eat_punct(Punct::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            names.push((name, init));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(NetDecl {
            kind,
            signed: signed || kind == NetKind::Integer,
            range,
            names,
        })
    }

    fn param_decl(&mut self, local: bool, items: &mut Vec<Item>) -> Result<(), ParseError> {
        // `parameter [range] NAME = expr {, NAME = expr};`
        let _ = self.opt_range()?;
        loop {
            let name = self.expect_ident()?;
            self.expect_punct(Punct::Assign)?;
            let value = self.expr()?;
            items.push(Item::Param(ParamDecl { local, name, value }));
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::Semi)?;
        Ok(())
    }

    fn connections(&mut self) -> Result<Connections, ParseError> {
        if self.peek() == Some(&Token::Punct(Punct::RParen)) {
            return Ok(Connections::Ordered(Vec::new()));
        }
        if self.peek() == Some(&Token::Punct(Punct::Dot)) {
            let mut named = Vec::new();
            loop {
                self.expect_punct(Punct::Dot)?;
                let port = self.expect_ident()?;
                self.expect_punct(Punct::LParen)?;
                let expr = if self.peek() == Some(&Token::Punct(Punct::RParen)) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(Punct::RParen)?;
                named.push((port, expr));
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            Ok(Connections::Named(named))
        } else {
            let mut ordered = Vec::new();
            loop {
                ordered.push(self.expr()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            Ok(Connections::Ordered(ordered))
        }
    }

    // ---- statements ----

    fn event_control(&mut self) -> Result<EventControl, ParseError> {
        if self.eat_punct(Punct::Star) {
            return Ok(EventControl::Star);
        }
        self.expect_punct(Punct::LParen)?;
        if self.eat_punct(Punct::Star) {
            self.expect_punct(Punct::RParen)?;
            return Ok(EventControl::Star);
        }
        let mut list = Vec::new();
        loop {
            let edge = if self.eat_keyword(Keyword::Posedge) {
                Edge::Pos
            } else if self.eat_keyword(Keyword::Negedge) {
                Edge::Neg
            } else {
                Edge::Any
            };
            let signal = self.expect_ident()?;
            list.push(EventExpr { edge, signal });
            if self.eat_keyword(Keyword::Or) || self.eat_punct(Punct::Comma) {
                continue;
            }
            self.expect_punct(Punct::RParen)?;
            break;
        }
        Ok(EventControl::List(list))
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Token::Keyword(Keyword::Begin)) => {
                self.bump();
                // optional block label `: name`
                if self.eat_punct(Punct::Colon) {
                    self.expect_ident()?;
                }
                let mut stmts = Vec::new();
                while !self.eat_keyword(Keyword::End) {
                    if self.at_end() {
                        return Err(self.err("missing `end`"));
                    }
                    stmts.push(self.stmt()?);
                }
                Ok(Stmt::Block(stmts))
            }
            Some(Token::Keyword(Keyword::If)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let then_stmt = Box::new(self.stmt()?);
                let else_stmt = if self.eat_keyword(Keyword::Else) {
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_stmt,
                    else_stmt,
                })
            }
            Some(Token::Keyword(k @ (Keyword::Case | Keyword::Casez | Keyword::Casex))) => {
                let kind = match k {
                    Keyword::Case => CaseKind::Case,
                    Keyword::Casez => CaseKind::Casez,
                    _ => CaseKind::Casex,
                };
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let expr = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let mut arms = Vec::new();
                while !self.eat_keyword(Keyword::Endcase) {
                    if self.at_end() {
                        return Err(self.err("missing `endcase`"));
                    }
                    let labels = if self.eat_keyword(Keyword::Default) {
                        self.eat_punct(Punct::Colon);
                        Vec::new()
                    } else {
                        let mut labels = vec![self.expr()?];
                        while self.eat_punct(Punct::Comma) {
                            labels.push(self.expr()?);
                        }
                        self.expect_punct(Punct::Colon)?;
                        labels
                    };
                    let body = self.stmt()?;
                    arms.push(CaseArm { labels, body });
                }
                Ok(Stmt::Case { kind, expr, arms })
            }
            Some(Token::Keyword(Keyword::For)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let init = Box::new(self.simple_assign_stmt()?);
                self.expect_punct(Punct::Semi)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::Semi)?;
                let step = Box::new(self.simple_assign_stmt()?);
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Some(Token::Keyword(Keyword::While)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let cond = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::While { cond, body })
            }
            Some(Token::Keyword(Keyword::Repeat)) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let count = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(Stmt::Repeat { count, body })
            }
            Some(Token::Keyword(Keyword::Forever)) => {
                self.bump();
                let body = Box::new(self.stmt()?);
                Ok(Stmt::Forever(body))
            }
            Some(Token::Punct(Punct::Hash)) => {
                self.bump();
                let n = self.expect_number()?;
                let delay = n
                    .value
                    .to_u64()
                    .ok_or_else(|| self.err("delay must be a known constant"))?;
                let stmt = if self.eat_punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.stmt()?))
                };
                Ok(Stmt::Delay { delay, stmt })
            }
            Some(Token::Punct(Punct::At)) => {
                self.bump();
                let event = self.event_control()?;
                let stmt = if self.eat_punct(Punct::Semi) {
                    None
                } else {
                    Some(Box::new(self.stmt()?))
                };
                Ok(Stmt::EventWait { event, stmt })
            }
            Some(Token::SysName(_)) => {
                let Some(Token::SysName(name)) = self.bump() else {
                    unreachable!()
                };
                let mut args = Vec::new();
                if self.eat_punct(Punct::LParen) && !self.eat_punct(Punct::RParen) {
                    loop {
                        match self.peek() {
                            Some(Token::Str(_)) => {
                                let Some(Token::Str(s)) = self.bump() else {
                                    unreachable!()
                                };
                                args.push(SysArg::Str(s));
                            }
                            _ => args.push(SysArg::Expr(self.expr()?)),
                        }
                        if self.eat_punct(Punct::Comma) {
                            continue;
                        }
                        self.expect_punct(Punct::RParen)?;
                        break;
                    }
                }
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::SysCall { name, args })
            }
            Some(Token::Punct(Punct::Semi)) => {
                self.bump();
                Ok(Stmt::Empty)
            }
            _ => {
                let s = self.simple_assign_stmt()?;
                self.expect_punct(Punct::Semi)?;
                Ok(s)
            }
        }
    }

    /// An assignment without the trailing semicolon (used by `for` headers).
    fn simple_assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let lhs = self.lvalue()?;
        if self.eat_punct(Punct::Assign) {
            let rhs = self.expr()?;
            Ok(Stmt::Blocking(lhs, rhs))
        } else if self.eat_punct(Punct::NonBlocking) {
            let rhs = self.expr()?;
            Ok(Stmt::NonBlocking(lhs, rhs))
        } else {
            Err(self.err("expected `=` or `<=` in assignment"))
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        if self.eat_punct(Punct::LBrace) {
            let mut parts = Vec::new();
            loop {
                parts.push(self.lvalue()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
            self.expect_punct(Punct::RBrace)?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if self.eat_punct(Punct::LBracket) {
            let first = self.expr()?;
            if self.eat_punct(Punct::Colon) {
                let msb = const_expr_i64(&first)
                    .ok_or_else(|| self.err("part select bounds must be constants"))?;
                let lsb = self.const_int()?;
                self.expect_punct(Punct::RBracket)?;
                Ok(LValue::Part(name, msb, lsb))
            } else if self.eat_punct(Punct::PlusColon) {
                let w = self.const_int()?;
                if w <= 0 {
                    return Err(self.err("indexed part width must be positive"));
                }
                self.expect_punct(Punct::RBracket)?;
                Ok(LValue::IndexedPart(name, Box::new(first), w as usize))
            } else {
                self.expect_punct(Punct::RBracket)?;
                Ok(LValue::Bit(name, Box::new(first)))
            }
        } else {
            Ok(LValue::Ident(name))
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct(Punct::Question) {
            let t = self.ternary()?;
            self.expect_punct(Punct::Colon)?;
            let f = self.ternary()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(t), Box::new(f)))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self, level: u8) -> Option<BinaryOp> {
        use BinaryOp::*;
        use Punct as P;
        let p = match self.peek() {
            Some(Token::Punct(p)) => *p,
            _ => return None,
        };
        let (op, lv) = match p {
            P::PipePipe => (LogicOr, 0),
            P::AmpAmp => (LogicAnd, 1),
            P::Pipe => (Or, 2),
            P::Caret => (Xor, 3),
            P::TildeCaret => (Xnor, 3),
            P::Amp => (And, 4),
            P::EqEq => (Eq, 5),
            P::BangEq => (Ne, 5),
            P::EqEqEq => (CaseEq, 5),
            P::BangEqEq => (CaseNe, 5),
            P::Lt => (Lt, 6),
            P::NonBlocking => (Le, 6), // `<=` in expression position
            P::Gt => (Gt, 6),
            P::GtEq => (Ge, 6),
            P::Shl => (Shl, 7),
            P::Shr => (Shr, 7),
            P::AShl => (AShl, 7),
            P::AShr => (AShr, 7),
            P::Plus => (Add, 8),
            P::Minus => (Sub, 8),
            P::Star => (Mul, 9),
            P::Slash => (Div, 9),
            P::Percent => (Mod, 9),
            P::Power => (Pow, 10),
            _ => return None,
        };
        if lv == level {
            Some(op)
        } else {
            None
        }
    }

    fn binary(&mut self, level: u8) -> Result<Expr, ParseError> {
        if level > 10 {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.binary(level + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        use Punct as P;
        let op = match self.peek() {
            Some(Token::Punct(P::Plus)) => Some(UnaryOp::Plus),
            Some(Token::Punct(P::Minus)) => Some(UnaryOp::Neg),
            Some(Token::Punct(P::Tilde)) => Some(UnaryOp::Not),
            Some(Token::Punct(P::Bang)) => Some(UnaryOp::LogicNot),
            Some(Token::Punct(P::Amp)) => Some(UnaryOp::RedAnd),
            Some(Token::Punct(P::Pipe)) => Some(UnaryOp::RedOr),
            Some(Token::Punct(P::Caret)) => Some(UnaryOp::RedXor),
            Some(Token::Punct(P::TildeAmp)) => Some(UnaryOp::RedNand),
            Some(Token::Punct(P::TildePipe)) => Some(UnaryOp::RedNor),
            Some(Token::Punct(P::TildeCaret)) => Some(UnaryOp::RedXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let e = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(e)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Literal {
                    value: n.value,
                    signed: n.signed,
                })
            }
            Some(Token::Punct(Punct::LParen)) => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            Some(Token::Punct(Punct::LBrace)) => {
                self.bump();
                let first = self.expr()?;
                if self.peek() == Some(&Token::Punct(Punct::LBrace)) {
                    // replication `{n{e}}`
                    let n = const_expr_i64(&first)
                        .ok_or_else(|| self.err("replication count must be constant"))?;
                    if n <= 0 || n > 4096 {
                        return Err(self.err("replication count out of range"));
                    }
                    self.bump(); // inner `{`
                    let inner = self.expr()?;
                    let mut inner_parts = vec![inner];
                    while self.eat_punct(Punct::Comma) {
                        inner_parts.push(self.expr()?);
                    }
                    self.expect_punct(Punct::RBrace)?;
                    self.expect_punct(Punct::RBrace)?;
                    let body = if inner_parts.len() == 1 {
                        inner_parts.pop().expect("one element")
                    } else {
                        Expr::Concat(inner_parts)
                    };
                    return Ok(Expr::Repl(n as usize, Box::new(body)));
                }
                let mut parts = vec![first];
                while self.eat_punct(Punct::Comma) {
                    parts.push(self.expr()?);
                }
                self.expect_punct(Punct::RBrace)?;
                if parts.len() == 1 {
                    Ok(parts.pop().expect("one element"))
                } else {
                    Ok(Expr::Concat(parts))
                }
            }
            Some(Token::SysName(_)) => {
                let Some(Token::SysName(name)) = self.bump() else {
                    unreachable!()
                };
                let mut args = Vec::new();
                if self.eat_punct(Punct::LParen) && !self.eat_punct(Punct::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if self.eat_punct(Punct::Comma) {
                            continue;
                        }
                        self.expect_punct(Punct::RParen)?;
                        break;
                    }
                }
                Ok(Expr::SysFunc(name, args))
            }
            Some(Token::Ident(_)) => {
                let name = self.expect_ident()?;
                if self.eat_punct(Punct::LBracket) {
                    let first = self.expr()?;
                    if self.eat_punct(Punct::Colon) {
                        let msb = const_expr_i64(&first)
                            .ok_or_else(|| self.err("part select bounds must be constants"))?;
                        let lsb = self.const_int()?;
                        self.expect_punct(Punct::RBracket)?;
                        Ok(Expr::Part(name, msb, lsb))
                    } else if self.eat_punct(Punct::PlusColon) {
                        let w = self.const_int()?;
                        if w <= 0 {
                            return Err(self.err("indexed part width must be positive"));
                        }
                        self.expect_punct(Punct::RBracket)?;
                        Ok(Expr::IndexedPart(name, Box::new(first), w as usize))
                    } else {
                        self.expect_punct(Punct::RBracket)?;
                        Ok(Expr::Bit(name, Box::new(first)))
                    }
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            other => Err(self.err(format!(
                "expected expression, found {}",
                other.map_or("end of input".to_string(), |t| format!("`{t}`"))
            ))),
        }
    }
}

/// Folds a literal-only expression to an `i64` (used for range bounds and
/// replication counts at parse time).
fn const_expr_i64(e: &Expr) -> Option<i64> {
    match e {
        Expr::Literal { value, .. } => value.to_u64().map(|v| v as i64),
        Expr::Unary(UnaryOp::Neg, inner) => const_expr_i64(inner).map(|v| -v),
        Expr::Binary(op, a, b) => {
            let a = const_expr_i64(a)?;
            let b = const_expr_i64(b)?;
            match op {
                BinaryOp::Add => Some(a + b),
                BinaryOp::Sub => Some(a - b),
                BinaryOp::Mul => Some(a * b),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SourceFile {
        parse(src).expect("parse ok")
    }

    #[test]
    fn minimal_module() {
        let f = parse_ok("module m; endmodule");
        assert_eq!(f.modules.len(), 1);
        assert_eq!(f.modules[0].name, "m");
    }

    #[test]
    fn ansi_ports() {
        let f = parse_ok(
            "module m(input wire [3:0] a, b, input clk, output reg [7:0] y, output z);\nendmodule",
        );
        let m = &f.modules[0];
        assert_eq!(m.port_order, vec!["a", "b", "clk", "y", "z"]);
        assert_eq!(m.ports.len(), 5);
        assert_eq!(m.ports[0].width(), 4);
        assert_eq!(m.ports[1].width(), 4);
        assert_eq!(m.ports[2].width(), 1);
        assert_eq!(m.ports[3].net, NetKind::Reg);
        assert_eq!(m.ports[3].dir, Direction::Output);
        assert_eq!(m.ports[4].width(), 1);
    }

    #[test]
    fn non_ansi_ports() {
        let f = parse_ok("module m(a, y);\ninput [1:0] a;\noutput reg y;\nendmodule");
        let m = &f.modules[0];
        assert_eq!(m.port_order, vec!["a", "y"]);
        assert_eq!(m.ports.len(), 2);
        assert_eq!(m.ports[0].dir, Direction::Input);
        assert_eq!(m.ports[1].net, NetKind::Reg);
    }

    #[test]
    fn continuous_assign() {
        let f = parse_ok("module m(input a, b, output y); assign y = a & b; endmodule");
        match &f.modules[0].items[0] {
            Item::Assign(a) => {
                assert_eq!(a.lhs, LValue::Ident("y".into()));
                assert!(matches!(a.rhs, Expr::Binary(BinaryOp::And, _, _)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn always_posedge() {
        let f = parse_ok(
            "module m(input clk, input d, output reg q);\nalways @(posedge clk) q <= d;\nendmodule",
        );
        match &f.modules[0].items[0] {
            Item::Always(a) => {
                assert_eq!(
                    a.event,
                    Some(EventControl::List(vec![EventExpr {
                        edge: Edge::Pos,
                        signal: "clk".into()
                    }]))
                );
                assert!(matches!(a.body, Stmt::NonBlocking(_, _)));
            }
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn always_star_and_case() {
        let f = parse_ok(
            "module m(input [1:0] s, output reg y);\nalways @(*) begin\ncase (s)\n2'd0: y = 1'b0;\n2'd1, 2'd2: y = 1'b1;\ndefault: y = 1'bx;\nendcase\nend\nendmodule",
        );
        match &f.modules[0].items[0] {
            Item::Always(a) => {
                assert_eq!(a.event, Some(EventControl::Star));
                match &a.body {
                    Stmt::Block(stmts) => match &stmts[0] {
                        Stmt::Case { arms, .. } => {
                            assert_eq!(arms.len(), 3);
                            assert_eq!(arms[1].labels.len(), 2);
                            assert!(arms[2].labels.is_empty());
                        }
                        other => panic!("expected case, got {other:?}"),
                    },
                    other => panic!("expected block, got {other:?}"),
                }
            }
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let f = parse_ok("module m(output [7:0] y); assign y = 1 + 2 * 3 == 7 ? 4 : 5; endmodule");
        match &f.modules[0].items[0] {
            Item::Assign(a) => match &a.rhs {
                Expr::Ternary(cond, _, _) => match cond.as_ref() {
                    Expr::Binary(BinaryOp::Eq, lhs, _) => {
                        assert!(matches!(lhs.as_ref(), Expr::Binary(BinaryOp::Add, _, _)));
                    }
                    other => panic!("expected ==, got {other:?}"),
                },
                other => panic!("expected ternary, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn le_vs_nonblocking() {
        // `<=` is less-equal inside an expression, non-blocking in a stmt.
        let f = parse_ok(
            "module m(input clk, input [3:0] a, output reg y);\nalways @(posedge clk) y <= a <= 4'd5;\nendmodule",
        );
        match &f.modules[0].items[0] {
            Item::Always(b) => match &b.body {
                Stmt::NonBlocking(_, rhs) => {
                    assert!(matches!(rhs, Expr::Binary(BinaryOp::Le, _, _)));
                }
                other => panic!("expected nonblocking, got {other:?}"),
            },
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn concat_repl_selects() {
        let f = parse_ok(
            "module m(input [7:0] a, output [15:0] y);\nassign y = {a[7:4], {3{a[0]}}, a[3 +: 4], a[2], 4'b1010 };\nendmodule",
        );
        match &f.modules[0].items[0] {
            Item::Assign(it) => match &it.rhs {
                Expr::Concat(parts) => {
                    assert_eq!(parts.len(), 5);
                    assert!(matches!(parts[0], Expr::Part(_, 7, 4)));
                    assert!(matches!(parts[1], Expr::Repl(3, _)));
                    assert!(matches!(parts[2], Expr::IndexedPart(_, _, 4)));
                    assert!(matches!(parts[3], Expr::Bit(_, _)));
                }
                other => panic!("expected concat, got {other:?}"),
            },
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn initial_with_delays_and_syscalls() {
        let f = parse_ok(
            "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\ninitial begin\n#10 $display(\"t=%0d\", $time);\n#10;\n$finish;\nend\nendmodule",
        );
        let m = &f.modules[0];
        assert!(matches!(m.items[0], Item::Net(_)));
        match &m.items[1] {
            Item::Always(a) => {
                assert!(a.event.is_none());
                assert!(matches!(a.body, Stmt::Delay { delay: 5, .. }));
            }
            other => panic!("expected always, got {other:?}"),
        }
        match &m.items[2] {
            Item::Initial(Stmt::Block(stmts)) => {
                assert!(matches!(
                    stmts[0],
                    Stmt::Delay {
                        delay: 10,
                        stmt: Some(_)
                    }
                ));
                assert!(matches!(
                    stmts[1],
                    Stmt::Delay {
                        delay: 10,
                        stmt: None
                    }
                ));
                assert!(matches!(stmts[2], Stmt::SysCall { .. }));
            }
            other => panic!("expected initial block, got {other:?}"),
        }
    }

    #[test]
    fn instance_named_and_ordered() {
        let f =
            parse_ok("module tb;\nwire y; reg a;\nmux u1(.y(y), .a(a));\nmux u2(y, a);\nendmodule");
        match &f.modules[0].items[2] {
            Item::Instance(i) => {
                assert_eq!(i.module, "mux");
                assert!(matches!(i.conns, Connections::Named(_)));
            }
            other => panic!("expected instance, got {other:?}"),
        }
        match &f.modules[0].items[3] {
            Item::Instance(i) => assert!(matches!(i.conns, Connections::Ordered(_))),
            other => panic!("expected instance, got {other:?}"),
        }
    }

    #[test]
    fn for_loop() {
        let f = parse_ok(
            "module m(input [7:0] a, output reg [3:0] n);\ninteger i;\nalways @(*) begin\nn = 0;\nfor (i = 0; i < 8; i = i + 1) if (a[i]) n = n + 1;\nend\nendmodule",
        );
        assert!(matches!(f.modules[0].items[0], Item::Net(_)));
    }

    #[test]
    fn parameters() {
        let f = parse_ok(
            "module m(input clk, output reg [1:0] s);\nparameter IDLE = 2'd0;\nlocalparam RUN = 2'd1;\nalways @(posedge clk) s <= RUN;\nendmodule",
        );
        let params: Vec<_> = f.modules[0]
            .items
            .iter()
            .filter(|i| matches!(i, Item::Param(_)))
            .collect();
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn syntax_errors_detected() {
        assert!(parse("module m; assign ; endmodule").is_err());
        assert!(parse("module m(input a; endmodule").is_err());
        assert!(parse("module m; always @(posedge) x <= 1; endmodule").is_err());
        assert!(parse("module m; initial begin x = 1; endmodule").is_err());
        assert!(parse("garbage tokens here").is_err());
        assert!(parse("module m; wire [3:0 a; endmodule").is_err());
    }

    #[test]
    fn missing_endmodule() {
        assert!(parse("module m; wire a;").is_err());
    }

    #[test]
    fn signed_decl_and_ashr() {
        let f = parse_ok(
            "module m(input signed [7:0] a, output signed [7:0] y);\nassign y = a >>> 2;\nendmodule",
        );
        assert!(f.modules[0].ports[0].signed);
        match &f.modules[0].items[0] {
            Item::Assign(a) => assert!(matches!(a.rhs, Expr::Binary(BinaryOp::AShr, _, _))),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn multiple_modules() {
        let f = parse_ok("module a; endmodule\nmodule b; endmodule");
        assert_eq!(f.modules.len(), 2);
        assert!(f.module("b").is_some());
        assert!(f.module("c").is_none());
    }
}
