//! Abstract syntax tree for the supported Verilog subset.

use crate::hash::{Fingerprint, StructuralHash};
use crate::logic::LogicVec;
use std::fmt;
use std::sync::OnceLock;

/// A parsed source file: one or more module definitions.
///
/// Carries a lazily computed structural [`Fingerprint`] so repeated
/// cache probes against the same parsed value hash once. The cache is
/// **per value**: cloning yields a fresh, empty cache (clones are
/// routinely mutated into mutants — inheriting the original's
/// fingerprint would silently alias distinct designs), and
/// [`SourceFile::module_mut`] invalidates it. Code that mutates
/// `modules` directly must do so before the first
/// [`SourceFile::fingerprint`] call on that value (every in-tree
/// mutation site operates on a fresh parse or clone).
#[derive(Default)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
    /// Lazily computed structural fingerprint of `modules`.
    fp: OnceLock<Fingerprint>,
}

impl SourceFile {
    /// A file over the given modules.
    pub fn new(modules: Vec<Module>) -> SourceFile {
        SourceFile {
            modules,
            fp: OnceLock::new(),
        }
    }

    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Mutable lookup by name. Invalidates the cached fingerprint — the
    /// caller is presumed to mutate the module.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut Module> {
        self.fp.take();
        self.modules.iter_mut().find(|m| m.name == name)
    }

    /// The structural fingerprint of this file, computed on first use
    /// and cached for the value's lifetime (see [`StructuralHash`]).
    /// This inherent method shadows the trait's; call
    /// `StructuralHash::fingerprint` explicitly to force a fresh
    /// computation.
    pub fn fingerprint(&self) -> Fingerprint {
        let fp = *self.fp.get_or_init(|| StructuralHash::fingerprint(self));
        // The cache's soundness rests on a convention the compiler
        // cannot check (the pub `modules` field must not be mutated
        // after the first fingerprint). Debug builds — including the
        // whole test suite — recompute and compare, so any violation
        // fails loudly at the probe instead of silently aliasing
        // distinct designs in a content-addressed cache.
        debug_assert_eq!(
            fp,
            StructuralHash::fingerprint(self),
            "stale cached fingerprint: this SourceFile was mutated through \
             the pub `modules` field after being fingerprinted; mutate via \
             `module_mut` (which invalidates) or before the first \
             `fingerprint()` call"
        );
        fp
    }
}

impl Clone for SourceFile {
    /// Clones the modules with a *fresh* fingerprint cache: clones are
    /// the raw material of mutants, and a copied fingerprint would
    /// outlive the first mutation.
    fn clone(&self) -> Self {
        SourceFile {
            modules: self.modules.clone(),
            fp: OnceLock::new(),
        }
    }
}

impl PartialEq for SourceFile {
    fn eq(&self, other: &Self) -> bool {
        self.modules == other.modules
    }
}

impl fmt::Debug for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceFile")
            .field("modules", &self.modules)
            .finish()
    }
}

/// A module definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header port order (names only; full declarations live in `ports`).
    pub port_order: Vec<String>,
    /// Port declarations.
    pub ports: Vec<PortDecl>,
    /// Body items.
    pub items: Vec<Item>,
}

/// Port direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// Net kind of a declaration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetKind {
    /// `wire` — driven by continuous assignments / instance outputs.
    Wire,
    /// `reg` — assigned from procedural code.
    Reg,
    /// `integer` — a 32-bit signed reg.
    Integer,
}

/// A `[msb:lsb]` range. Only descending constant ranges are supported
/// (`[7:0]`); the LSB may be non-zero.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Range {
    /// Most significant bit index.
    pub msb: i64,
    /// Least significant bit index.
    pub lsb: i64,
}

impl Range {
    /// Number of bits covered.
    pub fn width(&self) -> usize {
        (self.msb - self.lsb).unsigned_abs() as usize + 1
    }
}

/// A port declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Direction.
    pub dir: Direction,
    /// Net kind (`output reg q` vs `output q`).
    pub net: NetKind,
    /// `signed` flag.
    pub signed: bool,
    /// Vector range, or `None` for scalars.
    pub range: Option<Range>,
}

impl PortDecl {
    /// Bit width of the port.
    pub fn width(&self) -> usize {
        self.range.map_or(1, |r| r.width())
    }
}

/// A module body item.
#[derive(Clone, PartialEq, Debug)]
pub enum Item {
    /// `wire`/`reg`/`integer` declaration of one or more names.
    Net(NetDecl),
    /// `parameter` / `localparam`.
    Param(ParamDecl),
    /// `assign lhs = rhs;`
    Assign(AssignItem),
    /// `always @(...) stmt` (or bare `always stmt`).
    Always(AlwaysBlock),
    /// `initial stmt`.
    Initial(Stmt),
    /// Module instantiation.
    Instance(Instance),
}

/// A net declaration (one statement may declare several names).
#[derive(Clone, PartialEq, Debug)]
pub struct NetDecl {
    /// Kind of net.
    pub kind: NetKind,
    /// `signed` flag.
    pub signed: bool,
    /// Vector range.
    pub range: Option<Range>,
    /// Declared names with optional initializer (`reg x = 0` in TB code).
    pub names: Vec<(String, Option<Expr>)>,
}

/// A parameter declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct ParamDecl {
    /// `true` for `localparam`.
    pub local: bool,
    /// Name.
    pub name: String,
    /// Constant value expression.
    pub value: Expr,
}

/// A continuous assignment.
#[derive(Clone, PartialEq, Debug)]
pub struct AssignItem {
    /// Left-hand side.
    pub lhs: LValue,
    /// Right-hand side.
    pub rhs: Expr,
}

/// An `always` block.
#[derive(Clone, PartialEq, Debug)]
pub struct AlwaysBlock {
    /// Sensitivity: `None` means a bare `always` (free-running process,
    /// used by TB clock generators as `always #5 clk = ~clk;`).
    pub event: Option<EventControl>,
    /// Body.
    pub body: Stmt,
}

/// An event control `@(...)`.
#[derive(Clone, PartialEq, Debug)]
pub enum EventControl {
    /// `@(*)` / `@*` — sensitive to every signal read by the body.
    Star,
    /// An explicit list, e.g. `@(posedge clk or negedge rst_n)`.
    List(Vec<EventExpr>),
}

/// One entry of an event list.
#[derive(Clone, PartialEq, Debug)]
pub struct EventExpr {
    /// Edge qualifier.
    pub edge: Edge,
    /// Watched signal name.
    pub signal: String,
}

/// Edge qualifier of an event expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Edge {
    /// `posedge`
    Pos,
    /// `negedge`
    Neg,
    /// Level change (no qualifier).
    Any,
}

/// A module instantiation.
#[derive(Clone, PartialEq, Debug)]
pub struct Instance {
    /// Instantiated module name.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Port connections.
    pub conns: Connections,
}

/// Port connections of an instance.
#[derive(Clone, PartialEq, Debug)]
pub enum Connections {
    /// Positional `m u(a, b, c);`
    Ordered(Vec<Expr>),
    /// Named `.port(expr)`; `expr` may be omitted (`.port()`).
    Named(Vec<(String, Option<Expr>)>),
}

/// A procedural statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `begin ... end` (optionally named).
    Block(Vec<Stmt>),
    /// Blocking assignment `lhs = rhs;`.
    Blocking(LValue, Expr),
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking(LValue, Expr),
    /// `if (cond) s [else s]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_stmt: Box<Stmt>,
        /// Optional else-branch.
        else_stmt: Option<Box<Stmt>>,
    },
    /// `case`/`casez`/`casex`.
    Case {
        /// Which case flavour.
        kind: CaseKind,
        /// Selector expression.
        expr: Expr,
        /// Arms: labels (empty = `default`) and body.
        arms: Vec<CaseArm>,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Initialisation assignment.
        init: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
        /// Step assignment.
        step: Box<Stmt>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `repeat (n) body`.
    Repeat {
        /// Iteration count (evaluated once).
        count: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `forever body`.
    Forever(Box<Stmt>),
    /// `#n [stmt]` — delay, then optionally a statement.
    Delay {
        /// Ticks to wait.
        delay: u64,
        /// Statement to run after the delay, if inline.
        stmt: Option<Box<Stmt>>,
    },
    /// `@(...) [stmt]` — wait for an event, then optionally a statement.
    EventWait {
        /// What to wait for.
        event: EventControl,
        /// Statement to run after the event, if inline.
        stmt: Option<Box<Stmt>>,
    },
    /// A system task call, e.g. `$display("x=%d", x);`.
    SysCall {
        /// Task name including `$`.
        name: String,
        /// Arguments.
        args: Vec<SysArg>,
    },
    /// Empty statement `;`.
    Empty,
}

/// Flavour of a case statement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CaseKind {
    /// Exact (`===`) matching.
    Case,
    /// `z`/`?` bits are wildcards.
    Casez,
    /// `x` and `z` bits are wildcards.
    Casex,
}

/// One arm of a case statement.
#[derive(Clone, PartialEq, Debug)]
pub struct CaseArm {
    /// Match labels; empty means `default`.
    pub labels: Vec<Expr>,
    /// Arm body.
    pub body: Stmt,
}

/// A system-task argument.
#[derive(Clone, PartialEq, Debug)]
pub enum SysArg {
    /// A string literal (usually the format string).
    Str(String),
    /// An expression.
    Expr(Expr),
}

/// An assignable location.
#[derive(Clone, PartialEq, Debug)]
pub enum LValue {
    /// A whole signal.
    Ident(String),
    /// A single bit `sig[i]` (index may be dynamic).
    Bit(String, Box<Expr>),
    /// A constant part select `sig[msb:lsb]`.
    Part(String, i64, i64),
    /// An indexed part select `sig[base +: width]`.
    IndexedPart(String, Box<Expr>, usize),
    /// Concatenation of lvalues `{a, b}` (MSB first).
    Concat(Vec<LValue>),
}

impl LValue {
    /// The identifiers written by this lvalue.
    pub fn targets(&self) -> Vec<&str> {
        match self {
            LValue::Ident(n)
            | LValue::Bit(n, _)
            | LValue::Part(n, _, _)
            | LValue::IndexedPart(n, _, _) => {
                vec![n.as_str()]
            }
            LValue::Concat(parts) => parts.iter().flat_map(|p| p.targets()).collect(),
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnaryOp {
    /// `+`
    Plus,
    /// `-`
    Neg,
    /// `~`
    Not,
    /// `!`
    LogicNot,
    /// `&`
    RedAnd,
    /// `|`
    RedOr,
    /// `^`
    RedXor,
    /// `~&`
    RedNand,
    /// `~|`
    RedNor,
    /// `~^`
    RedXnor,
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^`
    Xnor,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `===`
    CaseEq,
    /// `!==`
    CaseNe,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<<<`
    AShl,
    /// `>>>`
    AShr,
}

impl BinaryOp {
    /// `true` for operators whose result is a single bit.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(
            self,
            Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge | LogicAnd | LogicOr
        )
    }

    /// `true` for shift operators (context width comes from the left side).
    pub fn is_shift(self) -> bool {
        use BinaryOp::*;
        matches!(self, Shl | Shr | AShl | AShr)
    }
}

/// An expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A literal value.
    Literal {
        /// The four-state value (already sized).
        value: LogicVec,
        /// Whether the literal was marked signed.
        signed: bool,
    },
    /// A signal or parameter reference.
    Ident(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, c}` (MSB first).
    Concat(Vec<Expr>),
    /// Replication `{n{e}}`.
    Repl(usize, Box<Expr>),
    /// Bit select `sig[i]`.
    Bit(String, Box<Expr>),
    /// Constant part select `sig[msb:lsb]`.
    Part(String, i64, i64),
    /// Indexed part select `sig[base +: width]`.
    IndexedPart(String, Box<Expr>, usize),
    /// `$signed(e)` / `$unsigned(e)` / `$time`.
    SysFunc(String, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for an unsigned literal.
    pub fn literal_u64(width: usize, value: u64) -> Expr {
        Expr::Literal {
            value: LogicVec::from_u64(width, value),
            signed: false,
        }
    }

    /// Collects every identifier read by this expression into `out`.
    pub fn collect_reads(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal { .. } => {}
            Expr::Ident(n) => out.push(n.clone()),
            Expr::Unary(_, e) => e.collect_reads(out),
            Expr::Binary(_, a, b) => {
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_reads(out);
                a.collect_reads(out);
                b.collect_reads(out);
            }
            Expr::Concat(es) | Expr::SysFunc(_, es) => {
                for e in es {
                    e.collect_reads(out);
                }
            }
            Expr::Repl(_, e) => e.collect_reads(out),
            Expr::Bit(n, i) => {
                out.push(n.clone());
                i.collect_reads(out);
            }
            Expr::Part(n, _, _) => out.push(n.clone()),
            Expr::IndexedPart(n, b, _) => {
                out.push(n.clone());
                b.collect_reads(out);
            }
        }
    }
}

impl Stmt {
    /// Collects every identifier read by this statement (conditions,
    /// right-hand sides, indices) into `out`. Used to build `@(*)`
    /// sensitivity lists.
    pub fn collect_reads(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Block(stmts) => {
                for s in stmts {
                    s.collect_reads(out);
                }
            }
            Stmt::Blocking(lv, e) | Stmt::NonBlocking(lv, e) => {
                lv.collect_index_reads(out);
                e.collect_reads(out);
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
            } => {
                cond.collect_reads(out);
                then_stmt.collect_reads(out);
                if let Some(e) = else_stmt {
                    e.collect_reads(out);
                }
            }
            Stmt::Case { expr, arms, .. } => {
                expr.collect_reads(out);
                for arm in arms {
                    for l in &arm.labels {
                        l.collect_reads(out);
                    }
                    arm.body.collect_reads(out);
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                init.collect_reads(out);
                cond.collect_reads(out);
                step.collect_reads(out);
                body.collect_reads(out);
            }
            Stmt::While { cond, body } => {
                cond.collect_reads(out);
                body.collect_reads(out);
            }
            Stmt::Repeat { count, body } => {
                count.collect_reads(out);
                body.collect_reads(out);
            }
            Stmt::Forever(body) => body.collect_reads(out),
            Stmt::Delay { stmt, .. } => {
                if let Some(s) = stmt {
                    s.collect_reads(out);
                }
            }
            Stmt::EventWait { stmt, .. } => {
                if let Some(s) = stmt {
                    s.collect_reads(out);
                }
            }
            Stmt::SysCall { args, .. } => {
                for a in args {
                    if let SysArg::Expr(e) = a {
                        e.collect_reads(out);
                    }
                }
            }
            Stmt::Empty => {}
        }
    }
}

impl LValue {
    /// Collects identifiers read by dynamic indices inside the lvalue.
    pub fn collect_index_reads(&self, out: &mut Vec<String>) {
        match self {
            LValue::Ident(_) | LValue::Part(_, _, _) => {}
            LValue::Bit(_, i) => i.collect_reads(out),
            LValue::IndexedPart(_, b, _) => b.collect_reads(out),
            LValue::Concat(parts) => {
                for p in parts {
                    p.collect_index_reads(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_width() {
        assert_eq!(Range { msb: 7, lsb: 0 }.width(), 8);
        assert_eq!(Range { msb: 0, lsb: 0 }.width(), 1);
        assert_eq!(Range { msb: 31, lsb: 16 }.width(), 16);
    }

    #[test]
    fn expr_reads() {
        let e = Expr::Binary(
            BinaryOp::Add,
            Box::new(Expr::Ident("a".into())),
            Box::new(Expr::Ternary(
                Box::new(Expr::Ident("sel".into())),
                Box::new(Expr::Bit("v".into(), Box::new(Expr::Ident("i".into())))),
                Box::new(Expr::literal_u64(4, 0)),
            )),
        );
        let mut reads = Vec::new();
        e.collect_reads(&mut reads);
        assert_eq!(reads, vec!["a", "sel", "v", "i"]);
    }

    #[test]
    fn lvalue_targets() {
        let lv = LValue::Concat(vec![
            LValue::Ident("hi".into()),
            LValue::Bit("lo".into(), Box::new(Expr::literal_u64(1, 0))),
        ]);
        assert_eq!(lv.targets(), vec!["hi", "lo"]);
    }
}
