//! Static RTL analysis: a closed, stable rule taxonomy over the
//! dataflow tables of [`crate::dataflow`].
//!
//! The linter is a deterministic pre-simulation gate: every rule is
//! decidable from the parsed AST in microseconds, so defective RTL can
//! be rejected before it burns a simulation budget. The pass is pure —
//! no I/O, no randomness — and [`lint_file`] returns diagnostics in a
//! canonical sort order, so the rendered output is byte-stable.
//!
//! | rule | severity | meaning |
//! |---|---|---|
//! | `multiple-drivers` | error | a signal with conflicting whole-signal drivers |
//! | `latch-inferred` | error | a combinational always assigns a signal on some paths only |
//! | `blocking-nonblocking-mix` | warning | one always block mixes `=` and `<=` |
//! | `comb-loop` | error | a combinational dependency cycle |
//! | `width-mismatch` | warning | an assignment/connection silently truncates |
//! | `undriven-signal` | error | a read (or output) signal nothing drives |
//! | `unused-signal` | warning | a declared signal nothing reads |
//! | `non-reset-register` | warning | a register never assigned under a reset |
//!
//! `initial`-block drivers are exempt from `multiple-drivers` (the
//! `initial clk = 0; always #5 clk = ~clk;` testbench idiom is legal),
//! and signals touched by an unresolvable instance are exempt from the
//! presence/absence rules (the instance may drive or read them).

use crate::ast::{Direction, SourceFile};
use crate::dataflow::{self, DriverKind, ModuleDataflow};
use std::collections::BTreeSet;
use std::fmt;

/// How severe a diagnostic is. `Error`-level diagnostics are the "hard"
/// findings a gate rejects; warnings are advisory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory: suspicious but simulable.
    Warning,
    /// A defect: gate-mode rejects the design.
    Error,
}

impl Severity {
    /// Stable lowercase name (`warning` / `error`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The closed rule taxonomy. Stable: names are part of the
/// `diagnostics.jsonl` artifact contract and never change meaning.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Rule {
    /// Conflicting whole-signal drivers.
    MultipleDrivers,
    /// Incomplete assignment in a combinational always block.
    LatchInferred,
    /// Blocking and nonblocking assignments in one always block.
    BlockingNonblockingMix,
    /// Combinational dependency cycle.
    CombLoop,
    /// Silently truncating assignment or port connection.
    WidthMismatch,
    /// A read or output signal with no driver.
    UndrivenSignal,
    /// A declared signal nothing reads.
    UnusedSignal,
    /// A register never assigned under a reset conditional.
    NonResetRegister,
}

impl Rule {
    /// Every rule, in canonical order.
    pub const ALL: [Rule; 8] = [
        Rule::MultipleDrivers,
        Rule::LatchInferred,
        Rule::BlockingNonblockingMix,
        Rule::CombLoop,
        Rule::WidthMismatch,
        Rule::UndrivenSignal,
        Rule::UnusedSignal,
        Rule::NonResetRegister,
    ];

    /// Stable kebab-case rule id.
    pub fn name(self) -> &'static str {
        match self {
            Rule::MultipleDrivers => "multiple-drivers",
            Rule::LatchInferred => "latch-inferred",
            Rule::BlockingNonblockingMix => "blocking-nonblocking-mix",
            Rule::CombLoop => "comb-loop",
            Rule::WidthMismatch => "width-mismatch",
            Rule::UndrivenSignal => "undriven-signal",
            Rule::UnusedSignal => "unused-signal",
            Rule::NonResetRegister => "non-reset-register",
        }
    }

    /// The inverse of [`Rule::name`].
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The rule's fixed severity.
    pub fn severity(self) -> Severity {
        match self {
            Rule::MultipleDrivers | Rule::LatchInferred | Rule::CombLoop | Rule::UndrivenSignal => {
                Severity::Error
            }
            Rule::BlockingNonblockingMix
            | Rule::WidthMismatch
            | Rule::UnusedSignal
            | Rule::NonResetRegister => Severity::Warning,
        }
    }

    /// Canonical index into [`Rule::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// The rule's severity (denormalized for rendering).
    pub severity: Severity,
    /// Module the finding is in.
    pub module: String,
    /// Principal signal (empty for block-level findings with no single
    /// subject).
    pub signal: String,
    /// Deterministic source location (`port N` / `item N` — the AST
    /// carries no line numbers, so locations are declaration-order
    /// based).
    pub location: String,
    /// Human-readable one-liner.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}] {}: {} ({})",
            self.severity.name(),
            self.module,
            self.rule.name(),
            self.signal,
            self.message,
            self.location
        )
    }
}

/// The result of linting one source file: diagnostics in canonical
/// order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (module, rule, signal, location,
    /// message).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// `true` when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of `Error`-severity findings.
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Per-rule counts, indexed like [`Rule::ALL`].
    pub fn rule_counts(&self) -> [usize; Rule::ALL.len()] {
        let mut counts = [0usize; Rule::ALL.len()];
        for d in &self.diagnostics {
            counts[d.rule.index()] += 1;
        }
        counts
    }

    /// A stable 64-bit signature of the findings (FNV-1a over the
    /// canonical rendering). Two designs with the same structural
    /// findings share a signature; AutoEval uses this to tell mutants
    /// apart from the golden design without simulating.
    pub fn signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for d in &self.diagnostics {
            mix(d.rule.name().as_bytes());
            mix(b"|");
            mix(d.module.as_bytes());
            mix(b"|");
            mix(d.signal.as_bytes());
            mix(b"|");
            mix(d.location.as_bytes());
            mix(b"\n");
        }
        h
    }
}

/// Lints every module of `file`. Pure and deterministic: same input,
/// same bytes out.
pub fn lint_file(file: &SourceFile) -> LintReport {
    let mut diagnostics = Vec::new();
    for df in dataflow::analyze(file) {
        lint_module_dataflow(&df, &mut diagnostics);
    }
    diagnostics.sort_by(|a, b| {
        (
            a.module.as_str(),
            a.rule.index(),
            a.signal.as_str(),
            a.location.as_str(),
            a.message.as_str(),
        )
            .cmp(&(
                b.module.as_str(),
                b.rule.index(),
                b.signal.as_str(),
                b.location.as_str(),
                b.message.as_str(),
            ))
    });
    LintReport { diagnostics }
}

fn diag(
    df: &ModuleDataflow,
    rule: Rule,
    signal: &str,
    location: String,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: rule.severity(),
        module: df.name.clone(),
        signal: signal.to_string(),
        location,
        message,
    }
}

fn lint_module_dataflow(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    multiple_drivers(df, out);
    latch_inferred(df, out);
    blocking_nonblocking_mix(df, out);
    comb_loop(df, out);
    width_mismatch(df, out);
    undriven_signal(df, out);
    unused_signal(df, out);
    non_reset_register(df, out);
}

fn multiple_drivers(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for (name, f) in &df.signals {
        if f.opaque {
            continue;
        }
        // One group per driving item; `initial` initialization is
        // exempt (legal alongside a process driver).
        let mut groups: BTreeSet<usize> = BTreeSet::new();
        let mut full_groups: BTreeSet<usize> = BTreeSet::new();
        for d in &f.drivers {
            if d.kind == DriverKind::Initial {
                continue;
            }
            groups.insert(d.item);
            if d.full {
                full_groups.insert(d.item);
            }
        }
        if groups.len() >= 2 && !full_groups.is_empty() {
            let first = groups.iter().next().copied().unwrap_or(0);
            out.push(diag(
                df,
                Rule::MultipleDrivers,
                name,
                format!("item {first}"),
                format!(
                    "`{name}` has {} conflicting drivers (items {})",
                    groups.len(),
                    groups
                        .iter()
                        .map(|i| i.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
        }
    }
}

fn latch_inferred(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for a in &df.always {
        if a.kind != DriverKind::AlwaysComb {
            continue;
        }
        for sig in a.may_assign.difference(&a.must_assign) {
            out.push(diag(
                df,
                Rule::LatchInferred,
                sig,
                format!("item {}", a.item),
                format!(
                    "`{sig}` is not assigned on every path through the combinational always block"
                ),
            ));
        }
    }
}

fn blocking_nonblocking_mix(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for a in &df.always {
        if a.blocking > 0 && a.nonblocking > 0 {
            let subject = a
                .may_assign
                .iter()
                .next()
                .map_or_else(String::new, |s| s.clone());
            out.push(diag(
                df,
                Rule::BlockingNonblockingMix,
                &subject,
                format!("item {}", a.item),
                format!(
                    "always block mixes {} blocking and {} nonblocking assignments",
                    a.blocking, a.nonblocking
                ),
            ));
        }
    }
}

fn comb_loop(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for cycle in dataflow::comb_cycles(&df.comb_edges) {
        let members: BTreeSet<&str> = cycle.iter().map(String::as_str).collect();
        let item = df
            .comb_edges
            .iter()
            .filter(|(r, t, _)| members.contains(r.as_str()) && members.contains(t.as_str()))
            .map(|(_, _, i)| *i)
            .min()
            .unwrap_or(0);
        let head = cycle.first().cloned().unwrap_or_default();
        out.push(diag(
            df,
            Rule::CombLoop,
            &head,
            format!("item {item}"),
            format!("combinational loop through {}", cycle.join(" -> ")),
        ));
    }
}

fn width_mismatch(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for (item, target, lw, rw) in &df.width_deltas {
        out.push(diag(
            df,
            Rule::WidthMismatch,
            target,
            format!("item {item}"),
            format!("{rw}-bit value silently truncated to {lw} bits"),
        ));
    }
}

fn undriven_signal(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for (name, f) in &df.signals {
        if f.opaque || f.port == Some(Direction::Input) || !f.drivers.is_empty() {
            continue;
        }
        if f.read || f.port == Some(Direction::Output) {
            out.push(diag(
                df,
                Rule::UndrivenSignal,
                name,
                f.decl.render(),
                format!("`{name}` is read but nothing drives it"),
            ));
        }
    }
}

fn unused_signal(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for (name, f) in &df.signals {
        if f.opaque || f.read || f.port == Some(Direction::Output) {
            continue;
        }
        out.push(diag(
            df,
            Rule::UnusedSignal,
            name,
            f.decl.render(),
            format!("`{name}` is never read"),
        ));
    }
}

fn non_reset_register(df: &ModuleDataflow, out: &mut Vec<Diagnostic>) {
    for (name, f) in &df.signals {
        let seq_item = f
            .drivers
            .iter()
            .find(|d| d.kind == DriverKind::AlwaysSeq)
            .map(|d| d.item);
        let Some(item) = seq_item else { continue };
        if !f.reset_seen {
            out.push(diag(
                df,
                Rule::NonResetRegister,
                name,
                format!("item {item}"),
                format!("register `{name}` is never assigned under a reset"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lint(src: &str) -> LintReport {
        lint_file(&parse(src).expect("parse"))
    }

    fn fired(report: &LintReport, rule: Rule) -> usize {
        report.rule_counts()[rule.index()]
    }

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.name()), Some(r));
            assert_eq!(Rule::ALL[r.index()], r);
        }
        assert_eq!(Rule::from_name("nope"), None);
    }

    #[test]
    fn clean_module_is_clean() {
        let r = lint("module m(input [3:0] a, b, output [4:0] y);\nassign y = a + b;\nendmodule");
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn multiple_drivers_fires() {
        let r = lint("module m(input a, b, output y);\nassign y = a;\nassign y = b;\nendmodule");
        assert_eq!(fired(&r, Rule::MultipleDrivers), 1);
        assert_eq!(r.errors(), 1);
    }

    #[test]
    fn per_bit_split_assign_is_legal() {
        let r = lint(
            "module m(input a, b, output [1:0] y);\nassign y[0] = a;\nassign y[1] = b;\nendmodule",
        );
        assert_eq!(fired(&r, Rule::MultipleDrivers), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn initial_plus_always_clock_idiom_is_legal() {
        let r = lint("module tb;\nreg clk;\ninitial clk = 0;\nalways #5 clk = ~clk;\nendmodule");
        assert_eq!(fired(&r, Rule::MultipleDrivers), 0, "{:?}", r.diagnostics);
        assert_eq!(fired(&r, Rule::CombLoop), 0);
    }

    #[test]
    fn latch_inferred_fires_on_incomplete_if() {
        let r = lint(
            "module m(input s, input a, output reg y);\nalways @(*) begin if (s) y = a; end\nendmodule",
        );
        assert_eq!(fired(&r, Rule::LatchInferred), 1);
    }

    #[test]
    fn complete_case_with_default_is_not_a_latch() {
        let r = lint(
            "module m(input [1:0] s, input a, b, output reg y);\n\
             always @(*) begin case (s) 2'd0: y = a; default: y = b; endcase end\n\
             endmodule",
        );
        assert_eq!(fired(&r, Rule::LatchInferred), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn mix_fires_per_block() {
        let r = lint(
            "module m(input clk, input a, output reg y);\nreg t;\n\
             always @(posedge clk) begin t = a; y <= t; end\n\
             endmodule",
        );
        assert_eq!(fired(&r, Rule::BlockingNonblockingMix), 1);
    }

    #[test]
    fn comb_loop_fires_on_assign_cycle() {
        let r = lint(
            "module m(input a, output x, output y);\nassign x = y & a;\nassign y = x | a;\nendmodule",
        );
        assert_eq!(fired(&r, Rule::CombLoop), 1);
        let d = &r.diagnostics[0];
        assert!(d.message.contains("x -> y"), "{}", d.message);
    }

    #[test]
    fn seq_feedback_is_not_a_comb_loop() {
        let r =
            lint("module m(input clk, output reg q);\nalways @(posedge clk) q <= ~q;\nendmodule");
        assert_eq!(fired(&r, Rule::CombLoop), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn width_mismatch_fires_on_truncation() {
        let r = lint("module m(input [7:0] a, b, output [3:0] y);\nassign y = a + b;\nendmodule");
        assert_eq!(fired(&r, Rule::WidthMismatch), 1);
    }

    #[test]
    fn undriven_signal_fires() {
        let r = lint("module m(input a, output y);\nwire t;\nassign y = t & a;\nendmodule");
        assert_eq!(fired(&r, Rule::UndrivenSignal), 1);
    }

    #[test]
    fn unused_signal_fires() {
        let r = lint("module m(input a, input b, output y);\nassign y = a;\nendmodule");
        assert_eq!(fired(&r, Rule::UnusedSignal), 1);
        assert_eq!(
            r.diagnostics
                .iter()
                .find(|d| d.rule == Rule::UnusedSignal)
                .map(|d| d.signal.as_str()),
            Some("b")
        );
    }

    #[test]
    fn non_reset_register_warns() {
        let r = lint(
            "module m(input clk, input d, output reg q);\nalways @(posedge clk) q <= d;\nendmodule",
        );
        assert_eq!(fired(&r, Rule::NonResetRegister), 1);
        assert_eq!(r.errors(), 0, "non-reset is advisory: {:?}", r.diagnostics);
        let with_reset = lint(
            "module m(input clk, rst, input d, output reg q);\n\
             always @(posedge clk) begin if (rst) q <= 1'b0; else q <= d; end\nendmodule",
        );
        assert_eq!(fired(&with_reset, Rule::NonResetRegister), 0);
    }

    #[test]
    fn diagnostics_sorted_and_signature_stable() {
        let src = "module m(input s, input a, input b, output reg y, output z);\n\
                   always @(*) begin if (s) y = a; end\n\
                   endmodule";
        let r1 = lint(src);
        let r2 = lint(src);
        assert_eq!(r1, r2);
        assert_eq!(r1.signature(), r2.signature());
        let mut sorted = r1.diagnostics.clone();
        sorted.sort_by(|a, b| {
            (
                a.module.clone(),
                a.rule.index(),
                a.signal.clone(),
                a.location.clone(),
            )
                .cmp(&(
                    b.module.clone(),
                    b.rule.index(),
                    b.signal.clone(),
                    b.location.clone(),
                ))
        });
        assert_eq!(r1.diagnostics, sorted);
        assert_ne!(r1.signature(), LintReport::default().signature());
    }
}
