//! Semantic AST mutation.
//!
//! One engine serves three paper roles:
//!
//! * **Eval2 mutants** — small single/double mutations of the golden RTL
//!   used as faulty DUTs;
//! * the **validator's "imperfect" RTL group** — the LLM-generated designs
//!   whose randomly-distributed errors make RS-matrix voting work;
//! * the **simulated LLM** — generated RTL/checker artifacts are golden
//!   artifacts with profile-controlled mutations injected.
//!
//! Mutations are chosen uniformly over *sites* (operator nodes, literals,
//! identifiers, conditions, case arms), so error positions are spread
//! across the design exactly the way Section III-B of the paper assumes.

use crate::ast::*;
use crate::logic::LogicVec;
use rand::Rng;
use std::collections::HashMap;

/// A record of one applied mutation (for logs and debugging).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mutation {
    /// Human-readable description, e.g. `"binary op + -> -"`.
    pub description: String,
}

/// Per-module context used by identifier-swap mutations.
struct ModuleInfo {
    widths: HashMap<String, usize>,
}

impl ModuleInfo {
    fn collect(m: &Module) -> Self {
        let mut widths = HashMap::new();
        for p in &m.ports {
            widths.insert(p.name.clone(), p.width());
        }
        for item in &m.items {
            if let Item::Net(d) = item {
                let w = d.range.map_or(1, |r| r.width());
                for (n, _) in &d.names {
                    widths.insert(n.clone(), w);
                }
            }
        }
        ModuleInfo { widths }
    }

    fn same_width_peer(&self, name: &str, rng: &mut impl Rng) -> Option<String> {
        let w = *self.widths.get(name)?;
        let mut peers: Vec<&String> = self
            .widths
            .iter()
            .filter(|(n, &pw)| pw == w && n.as_str() != name)
            .map(|(n, _)| n)
            .collect();
        if peers.is_empty() {
            return None;
        }
        peers.sort();
        Some(peers[rng.gen_range(0..peers.len())].clone())
    }
}

/// Applies up to `n` random semantic mutations to `module`, returning what
/// was done. Fewer may be applied when the module has few mutation sites.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use rand::SeedableRng;
/// let src = "module m(input [3:0] a, b, output [3:0] y); assign y = a + b; endmodule";
/// let mut file = correctbench_verilog::parse(src)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let muts = correctbench_verilog::mutate::mutate_module(
///     file.module_mut("m").expect("module"), &mut rng, 1);
/// assert_eq!(muts.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn mutate_module(module: &mut Module, rng: &mut impl Rng, n: usize) -> Vec<Mutation> {
    let mut applied = Vec::new();
    for _ in 0..n {
        match mutate_once(module, rng) {
            Some(m) => applied.push(m),
            None => break,
        }
    }
    applied
}

/// Number of mutation sites currently in `module`.
pub fn count_sites(module: &Module) -> usize {
    let info = ModuleInfo::collect(module);
    let mut count = 0usize;
    walk_module(module.items.as_slice(), &mut |site| {
        count += site_weight(site, &info);
    });
    count
}

/// Applies exactly one mutation, or `None` if no sites exist.
pub fn mutate_once(module: &mut Module, rng: &mut impl Rng) -> Option<Mutation> {
    let info = ModuleInfo::collect(module);
    let total = count_sites(module);
    if total == 0 {
        return None;
    }
    let target = rng.gen_range(0..total);
    let mut cursor = 0usize;
    let mut result = None;
    walk_module_mut(module.items.as_mut_slice(), &mut |site| {
        if result.is_some() {
            return;
        }
        let w = site_weight(site.as_ref(), &info);
        if w == 0 {
            return;
        }
        if target < cursor + w {
            result = apply(site, &info, rng);
        }
        cursor += w;
    });
    result
}

/// Read-only view of a mutation site.
enum SiteRef<'a> {
    Expr(&'a Expr),
    IfStmt { has_else: bool },
    CaseArms(&'a [CaseArm]),
}

/// Mutable view of a mutation site.
enum SiteMut<'a> {
    Expr(&'a mut Expr),
    IfStmt(&'a mut Stmt),
    CaseArms(&'a mut Vec<CaseArm>),
}

impl SiteMut<'_> {
    fn as_ref(&self) -> SiteRef<'_> {
        match self {
            SiteMut::Expr(e) => SiteRef::Expr(e),
            SiteMut::IfStmt(s) => SiteRef::IfStmt {
                has_else: matches!(
                    s,
                    Stmt::If {
                        else_stmt: Some(_),
                        ..
                    }
                ),
            },
            SiteMut::CaseArms(arms) => SiteRef::CaseArms(arms),
        }
    }
}

fn site_weight(site: SiteRef<'_>, info: &ModuleInfo) -> usize {
    match site {
        SiteRef::Expr(e) => match e {
            Expr::Binary(op, _, _) => {
                if swap_candidates(*op).is_empty() {
                    0
                } else {
                    1
                }
            }
            Expr::Literal { value, .. } if value.is_fully_known() => 1,
            Expr::Unary(UnaryOp::Not | UnaryOp::LogicNot | UnaryOp::Neg, _) => 1,
            Expr::Ternary(_, _, _) => 1,
            Expr::Ident(n) if info.widths.contains_key(n) => 1,
            _ => 0,
        },
        SiteRef::IfStmt { has_else } => {
            // condition inversion always possible; else-drop only with else.
            if has_else {
                2
            } else {
                1
            }
        }
        SiteRef::CaseArms(arms) => {
            if arms.len() >= 2 {
                1
            } else {
                0
            }
        }
    }
}

fn swap_candidates(op: BinaryOp) -> Vec<BinaryOp> {
    use BinaryOp::*;
    match op {
        Add => vec![Sub, Or],
        Sub => vec![Add],
        Mul => vec![Add],
        Div => vec![Mod],
        Mod => vec![Div],
        And => vec![Or, Xor],
        Or => vec![And, Xor],
        Xor => vec![Xnor, Or, And],
        Xnor => vec![Xor],
        LogicAnd => vec![LogicOr],
        LogicOr => vec![LogicAnd],
        Eq => vec![Ne],
        Ne => vec![Eq],
        Lt => vec![Le, Gt],
        Le => vec![Lt, Ge],
        Gt => vec![Ge, Lt],
        Ge => vec![Gt, Le],
        Shl => vec![Shr],
        Shr => vec![Shl, AShr],
        AShr => vec![Shr],
        AShl => vec![Shr],
        Pow | CaseEq | CaseNe => vec![],
    }
}

fn apply(site: SiteMut<'_>, info: &ModuleInfo, rng: &mut impl Rng) -> Option<Mutation> {
    match site {
        SiteMut::Expr(e) => apply_expr(e, info, rng),
        SiteMut::IfStmt(s) => {
            let Stmt::If {
                cond,
                then_stmt,
                else_stmt,
            } = s
            else {
                return None;
            };
            let drop_else = else_stmt.is_some() && rng.gen_bool(0.5);
            if drop_else {
                // Model a "forgot the reset/else branch" bug: the whole if
                // collapses to its then branch.
                let body = std::mem::replace(then_stmt.as_mut(), Stmt::Empty);
                *s = body;
                Some(Mutation {
                    description: "dropped else branch of if".to_string(),
                })
            } else {
                let old = std::mem::replace(cond, Expr::literal_u64(1, 0));
                *cond = Expr::Unary(UnaryOp::LogicNot, Box::new(old));
                Some(Mutation {
                    description: "inverted if condition".to_string(),
                })
            }
        }
        SiteMut::CaseArms(arms) => {
            if arms.len() < 2 {
                return None;
            }
            let i = rng.gen_range(0..arms.len());
            let mut j = rng.gen_range(0..arms.len() - 1);
            if j >= i {
                j += 1;
            }
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            let (left, right) = arms.split_at_mut(b);
            std::mem::swap(&mut left[a].body, &mut right[0].body);
            Some(Mutation {
                description: format!("swapped case arm bodies {a} and {b}"),
            })
        }
    }
}

fn apply_expr(e: &mut Expr, info: &ModuleInfo, rng: &mut impl Rng) -> Option<Mutation> {
    match e {
        Expr::Binary(op, _, _) => {
            let cands = swap_candidates(*op);
            if cands.is_empty() {
                return None;
            }
            let new = cands[rng.gen_range(0..cands.len())];
            let desc = format!("binary op {op:?} -> {new:?}");
            *op = new;
            Some(Mutation { description: desc })
        }
        Expr::Literal { value, signed } => {
            let w = value.width();
            let choice = rng.gen_range(0..3u8);
            let new = match choice {
                0 => value.add(&LogicVec::from_u64(w, 1)),
                1 => value.sub(&LogicVec::from_u64(w, 1)),
                _ => {
                    let bit = rng.gen_range(0..w);
                    let mut v = value.clone();
                    let flipped = match v.bit(bit) {
                        crate::logic::Bit::Zero => crate::logic::Bit::One,
                        _ => crate::logic::Bit::Zero,
                    };
                    v.set_bit(bit, flipped);
                    v
                }
            };
            let desc = format!(
                "literal {} -> {}",
                value.to_decimal_string(),
                new.to_decimal_string()
            );
            *e = Expr::Literal {
                value: new,
                signed: *signed,
            };
            Some(Mutation { description: desc })
        }
        Expr::Unary(op @ (UnaryOp::Not | UnaryOp::LogicNot | UnaryOp::Neg), inner) => {
            let desc = format!("dropped unary {op:?}");
            let inner = std::mem::replace(inner.as_mut(), Expr::literal_u64(1, 0));
            *e = inner;
            Some(Mutation { description: desc })
        }
        Expr::Ternary(_, t, f) => {
            std::mem::swap(t, f);
            Some(Mutation {
                description: "swapped ternary branches".to_string(),
            })
        }
        Expr::Ident(n) => {
            let peer = info.same_width_peer(n, rng)?;
            let desc = format!("signal {n} -> {peer}");
            *n = peer;
            Some(Mutation { description: desc })
        }
        _ => None,
    }
}

// ---- walkers ----

fn walk_module<'a>(items: &'a [Item], f: &mut impl FnMut(SiteRef<'a>)) {
    for item in items {
        match item {
            Item::Assign(a) => walk_expr(&a.rhs, f),
            Item::Always(b) => walk_stmt(&b.body, f),
            Item::Initial(s) => walk_stmt(s, f),
            Item::Net(_) | Item::Param(_) | Item::Instance(_) => {}
        }
    }
}

fn walk_stmt<'a>(s: &'a Stmt, f: &mut impl FnMut(SiteRef<'a>)) {
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                walk_stmt(st, f);
            }
        }
        Stmt::Blocking(_, e) | Stmt::NonBlocking(_, e) => walk_expr(e, f),
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            f(SiteRef::IfStmt {
                has_else: else_stmt.is_some(),
            });
            walk_expr(cond, f);
            walk_stmt(then_stmt, f);
            if let Some(e) = else_stmt {
                walk_stmt(e, f);
            }
        }
        Stmt::Case { expr, arms, .. } => {
            f(SiteRef::CaseArms(arms));
            walk_expr(expr, f);
            for arm in arms {
                walk_stmt(&arm.body, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            walk_stmt(init, f);
            walk_expr(cond, f);
            walk_stmt(step, f);
            walk_stmt(body, f);
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, f);
            walk_stmt(body, f);
        }
        Stmt::Repeat { count, body } => {
            walk_expr(count, f);
            walk_stmt(body, f);
        }
        Stmt::Forever(body) => walk_stmt(body, f),
        Stmt::Delay { stmt, .. } | Stmt::EventWait { stmt, .. } => {
            if let Some(st) = stmt {
                walk_stmt(st, f);
            }
        }
        Stmt::SysCall { .. } | Stmt::Empty => {}
    }
}

fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(SiteRef<'a>)) {
    f(SiteRef::Expr(e));
    match e {
        Expr::Unary(_, a) | Expr::Repl(_, a) => walk_expr(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Ternary(c, a, b) => {
            walk_expr(c, f);
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Concat(es) | Expr::SysFunc(_, es) => {
            for x in es {
                walk_expr(x, f);
            }
        }
        Expr::Bit(_, i) => walk_expr(i, f),
        Expr::IndexedPart(_, b, _) => walk_expr(b, f),
        Expr::Literal { .. } | Expr::Ident(_) | Expr::Part(_, _, _) => {}
    }
}

fn walk_module_mut(items: &mut [Item], f: &mut impl FnMut(SiteMut<'_>)) {
    for item in items {
        match item {
            Item::Assign(a) => walk_expr_mut(&mut a.rhs, f),
            Item::Always(b) => walk_stmt_mut(&mut b.body, f),
            Item::Initial(s) => walk_stmt_mut(s, f),
            Item::Net(_) | Item::Param(_) | Item::Instance(_) => {}
        }
    }
}

fn walk_stmt_mut(s: &mut Stmt, f: &mut impl FnMut(SiteMut<'_>)) {
    // The If site may replace the whole statement, so offer it first and
    // re-check the shape afterwards.
    if matches!(s, Stmt::If { .. }) {
        f(SiteMut::IfStmt(s));
    }
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                walk_stmt_mut(st, f);
            }
        }
        Stmt::Blocking(_, e) | Stmt::NonBlocking(_, e) => walk_expr_mut(e, f),
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            walk_expr_mut(cond, f);
            walk_stmt_mut(then_stmt, f);
            if let Some(e) = else_stmt {
                walk_stmt_mut(e, f);
            }
        }
        Stmt::Case { expr, arms, .. } => {
            f(SiteMut::CaseArms(arms));
            walk_expr_mut(expr, f);
            for arm in arms {
                walk_stmt_mut(&mut arm.body, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            walk_stmt_mut(init, f);
            walk_expr_mut(cond, f);
            walk_stmt_mut(step, f);
            walk_stmt_mut(body, f);
        }
        Stmt::While { cond, body } => {
            walk_expr_mut(cond, f);
            walk_stmt_mut(body, f);
        }
        Stmt::Repeat { count, body } => {
            walk_expr_mut(count, f);
            walk_stmt_mut(body, f);
        }
        Stmt::Forever(body) => walk_stmt_mut(body, f),
        Stmt::Delay { stmt, .. } | Stmt::EventWait { stmt, .. } => {
            if let Some(st) = stmt {
                walk_stmt_mut(st, f);
            }
        }
        Stmt::SysCall { .. } | Stmt::Empty => {}
    }
}

fn walk_expr_mut(e: &mut Expr, f: &mut impl FnMut(SiteMut<'_>)) {
    f(SiteMut::Expr(e));
    match e {
        Expr::Unary(_, a) | Expr::Repl(_, a) => walk_expr_mut(a, f),
        Expr::Binary(_, a, b) => {
            walk_expr_mut(a, f);
            walk_expr_mut(b, f);
        }
        Expr::Ternary(c, a, b) => {
            walk_expr_mut(c, f);
            walk_expr_mut(a, f);
            walk_expr_mut(b, f);
        }
        Expr::Concat(es) | Expr::SysFunc(_, es) => {
            for x in es {
                walk_expr_mut(x, f);
            }
        }
        Expr::Bit(_, i) => walk_expr_mut(i, f),
        Expr::IndexedPart(_, b, _) => walk_expr_mut(b, f),
        Expr::Literal { .. } | Expr::Ident(_) | Expr::Part(_, _, _) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::print_module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ADDER: &str =
        "module add(input [3:0] a, b, output [4:0] y);\nassign y = a + b;\nendmodule";

    const FSM: &str = "module fsm(input clk, rst, x, output reg y);\nreg [1:0] s;\nalways @(posedge clk) begin\nif (rst) s <= 2'd0;\nelse begin\ncase (s)\n2'd0: if (x) s <= 2'd1;\n2'd1: if (x) s <= 2'd2; else s <= 2'd0;\ndefault: s <= 2'd0;\nendcase\nend\nend\nalways @(*) y = s == 2'd2;\nendmodule";

    #[test]
    fn sites_counted() {
        let f = parse(ADDER).expect("parse");
        // one binary op + two idents = 3 sites
        assert_eq!(count_sites(&f.modules[0]), 3);
        let f2 = parse(FSM).expect("parse");
        assert!(count_sites(&f2.modules[0]) > 8);
    }

    #[test]
    fn mutation_changes_module() {
        let f = parse(FSM).expect("parse");
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..20u64 {
            let mut rng2 = StdRng::seed_from_u64(seed);
            let mut m = f.modules[0].clone();
            let muts = mutate_module(&mut m, &mut rng2, 1);
            assert_eq!(muts.len(), 1, "seed {seed}");
            assert_ne!(m, f.modules[0], "seed {seed}: mutation was a no-op");
        }
        let _ = &mut rng;
    }

    #[test]
    fn mutants_still_parse_and_elaborate() {
        let f = parse(FSM).expect("parse");
        for seed in 0..30u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = f.modules[0].clone();
            mutate_module(&mut m, &mut rng, 2);
            let printed = print_module(&m);
            let reparsed = parse(&printed)
                .unwrap_or_else(|e| panic!("seed {seed}: mutant no longer parses: {e}\n{printed}"));
            crate::elaborate::elaborate(&reparsed, "fsm")
                .unwrap_or_else(|e| panic!("seed {seed}: mutant no longer elaborates: {e}"));
        }
    }

    #[test]
    fn multiple_mutations() {
        let f = parse(FSM).expect("parse");
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = f.modules[0].clone();
        let muts = mutate_module(&mut m, &mut rng, 3);
        assert_eq!(muts.len(), 3);
    }

    #[test]
    fn no_sites_no_mutation() {
        let f = parse("module empty; endmodule").expect("parse");
        let mut m = f.modules[0].clone();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(mutate_once(&mut m, &mut rng).is_none());
    }

    #[test]
    fn mutations_distribute_across_sites() {
        // Over many seeds, both the assign expr and the FSM body receive
        // mutations — errors are randomly distributed (paper Section III-B).
        let f = parse(FSM).expect("parse");
        let mut descriptions = std::collections::HashSet::new();
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = f.modules[0].clone();
            for mu in mutate_module(&mut m, &mut rng, 1) {
                descriptions.insert(mu.description);
            }
        }
        assert!(
            descriptions.len() >= 6,
            "expected diverse mutations, got {descriptions:?}"
        );
    }
}
