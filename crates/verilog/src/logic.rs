//! Four-state logic values.
//!
//! A [`LogicVec`] stores a fixed-width vector of IEEE-1364 four-state bits
//! (`0`, `1`, `x`, `z`) in two bit planes, the classic aval/bval encoding
//! used by VPI and most event-driven simulators:
//!
//! | bit | `val` plane | `unk` plane |
//! |-----|-------------|-------------|
//! | `0` | 0           | 0           |
//! | `1` | 1           | 0           |
//! | `x` | 0           | 1           |
//! | `z` | 1           | 1           |
//!
//! All operators follow the Verilog semantics used by the simulator and the
//! checker IR interpreter: bitwise operators propagate `x` per the standard
//! truth tables, arithmetic and relational operators produce an all-`x`
//! result if any input bit is unknown, and `===`/`!==` compare the four-state
//! encoding exactly.

use std::fmt;

/// A single four-state bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Bit {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Bit {
    /// Returns `true` for [`Bit::Zero`] and [`Bit::One`].
    pub fn is_known(self) -> bool {
        matches!(self, Bit::Zero | Bit::One)
    }

    /// The character Verilog sources use for this bit (`0`, `1`, `x`, `z`).
    pub fn to_char(self) -> char {
        match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
            Bit::Z => 'z',
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A fixed-width vector of four-state bits.
///
/// Bit 0 is the least significant bit. Widths of any size are supported;
/// storage is in 64-bit words. Unused high bits of the last word are always
/// kept at zero in both planes (the *normalized* invariant), so plane-level
/// equality is value equality.
///
/// # Examples
///
/// ```
/// use correctbench_verilog::logic::LogicVec;
///
/// let a = LogicVec::from_u64(8, 0x5a);
/// let b = LogicVec::from_u64(8, 0x0f);
/// assert_eq!(a.and(&b), LogicVec::from_u64(8, 0x0a));
/// assert_eq!(a.add(&b).to_u64(), Some(0x69));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: usize,
    val: Vec<u64>,
    unk: Vec<u64>,
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

fn top_mask(width: usize) -> u64 {
    let rem = width % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

impl LogicVec {
    /// An all-`x` vector, the value of every `reg` before first assignment.
    pub fn filled_x(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let n = words_for(width);
        let mut v = LogicVec {
            width,
            val: vec![0; n],
            unk: vec![u64::MAX; n],
        };
        v.normalize();
        v
    }

    /// An all-`z` vector.
    pub fn filled_z(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let n = words_for(width);
        let mut v = LogicVec {
            width,
            val: vec![u64::MAX; n],
            unk: vec![u64::MAX; n],
        };
        v.normalize();
        v
    }

    /// An all-zero vector.
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let n = words_for(width);
        LogicVec {
            width,
            val: vec![0; n],
            unk: vec![0; n],
        }
    }

    /// An all-ones vector.
    pub fn ones(width: usize) -> Self {
        let mut v = LogicVec::zeros(width);
        for w in &mut v.val {
            *w = u64::MAX;
        }
        v.normalize();
        v
    }

    /// Builds a vector from the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut v = LogicVec::zeros(width);
        v.val[0] = value;
        v.normalize();
        v
    }

    /// Builds a vector from the low `width` bits of a `u128`.
    pub fn from_u128(width: usize, value: u128) -> Self {
        let mut v = LogicVec::zeros(width);
        v.val[0] = value as u64;
        if v.val.len() > 1 {
            v.val[1] = (value >> 64) as u64;
        }
        v.normalize();
        v
    }

    /// A 1-bit vector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        LogicVec::from_u64(1, b as u64)
    }

    /// A 1-bit vector from a [`Bit`].
    pub fn from_bit(b: Bit) -> Self {
        let mut v = LogicVec::zeros(1);
        v.set_bit(0, b);
        v
    }

    /// Builds a vector from bits listed most-significant first, as they
    /// appear in a Verilog binary literal.
    pub fn from_bits_msb_first(bits: &[Bit]) -> Self {
        assert!(!bits.is_empty(), "bit list must be non-empty");
        let mut v = LogicVec::zeros(bits.len());
        for (i, b) in bits.iter().rev().enumerate() {
            v.set_bit(i, *b);
        }
        v
    }

    /// Restores the normalized invariant (clears unused high bits).
    fn normalize(&mut self) {
        let m = top_mask(self.width);
        let last = self.val.len() - 1;
        self.val[last] &= m;
        self.unk[last] &= m;
    }

    /// The bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: usize) -> Bit {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let w = i / 64;
        let b = i % 64;
        let v = (self.val[w] >> b) & 1;
        let u = (self.unk[w] >> b) & 1;
        match (u, v) {
            (0, 0) => Bit::Zero,
            (0, 1) => Bit::One,
            (1, 0) => Bit::X,
            _ => Bit::Z,
        }
    }

    /// Writes bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: usize, b: Bit) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let w = i / 64;
        let sh = i % 64;
        let (u, v) = match b {
            Bit::Zero => (0u64, 0u64),
            Bit::One => (0, 1),
            Bit::X => (1, 0),
            Bit::Z => (1, 1),
        };
        self.val[w] = (self.val[w] & !(1 << sh)) | (v << sh);
        self.unk[w] = (self.unk[w] & !(1 << sh)) | (u << sh);
    }

    /// `true` when no bit is `x` or `z`.
    pub fn is_fully_known(&self) -> bool {
        self.unk.iter().all(|&w| w == 0)
    }

    /// `true` when every bit is `x` or `z`.
    pub fn is_fully_unknown(&self) -> bool {
        let m = top_mask(self.width);
        let last = self.unk.len() - 1;
        self.unk[..last].iter().all(|&w| w == u64::MAX) && self.unk[last] == m
    }

    /// The value as a `u64` if fully known and all bits above 64 are zero.
    pub fn to_u64(&self) -> Option<u64> {
        if !self.is_fully_known() {
            return None;
        }
        if self.val[1..].iter().any(|&w| w != 0) {
            return None;
        }
        Some(self.val[0])
    }

    /// The value as a `u128` if fully known and all bits above 128 are zero.
    pub fn to_u128(&self) -> Option<u128> {
        if !self.is_fully_known() {
            return None;
        }
        if self.val.len() > 2 && self.val[2..].iter().any(|&w| w != 0) {
            return None;
        }
        let lo = self.val[0] as u128;
        let hi = if self.val.len() > 1 {
            self.val[1] as u128
        } else {
            0
        };
        Some(lo | (hi << 64))
    }

    /// Interprets the vector as a signed integer, if fully known and the
    /// magnitude fits an `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        if !self.is_fully_known() || self.width > 64 {
            // Multi-word signed conversion: only handle sign-extension
            // patterns that fit i64.
            if !self.is_fully_known() {
                return None;
            }
        }
        let sext = self.sign_extend(64.max(self.width));
        if sext.width > 64 {
            // All words above the first must be a sign extension of bit 63.
            let neg = (sext.val[0] >> 63) & 1 == 1;
            let fill = if neg { u64::MAX } else { 0 };
            let m = top_mask(sext.width);
            let last = sext.val.len() - 1;
            for (i, &w) in sext.val.iter().enumerate().skip(1) {
                let expect = if i == last { fill & m } else { fill };
                if w != expect {
                    return None;
                }
            }
        }
        Some(sext.val[0] as i64)
    }

    /// Truth value per Verilog: `1` if any bit is one, `0` if all bits are
    /// zero, `x` otherwise.
    pub fn truthy(&self) -> Bit {
        let any_one = self.val.iter().zip(&self.unk).any(|(&v, &u)| v & !u != 0);
        if any_one {
            return Bit::One;
        }
        if self.is_fully_known() {
            Bit::Zero
        } else {
            Bit::X
        }
    }

    /// `true` when [`truthy`](Self::truthy) is [`Bit::One`].
    pub fn is_true(&self) -> bool {
        self.truthy() == Bit::One
    }

    /// Zero- or sign-less resize: truncates or zero-extends to `width`.
    pub fn zero_extend(&self, width: usize) -> LogicVec {
        assert!(width > 0);
        let mut out = LogicVec::zeros(width);
        let copy = self.width.min(width);
        for i in 0..copy.div_ceil(64) {
            out.val[i] = self.val[i];
            out.unk[i] = self.unk[i];
        }
        // Clear bits between `copy` and the end that were copied in excess.
        if copy < width {
            // mask out bits >= copy within the copied words
            let w = copy / 64;
            let rem = copy % 64;
            if rem != 0 && w < out.val.len() {
                let m = (1u64 << rem) - 1;
                out.val[w] &= m;
                out.unk[w] &= m;
            }
            for i in (copy.div_ceil(64))..out.val.len() {
                out.val[i] = 0;
                out.unk[i] = 0;
            }
        }
        out.normalize();
        out
    }

    /// Truncates or sign-extends (replicating the MSB, including `x`/`z`).
    pub fn sign_extend(&self, width: usize) -> LogicVec {
        assert!(width > 0);
        if width <= self.width {
            return self.zero_extend(width);
        }
        let msb = self.bit(self.width - 1);
        let mut out = self.zero_extend(width);
        for i in self.width..width {
            out.set_bit(i, msb);
        }
        out
    }

    /// Resize honouring a signedness flag.
    pub fn resize(&self, width: usize, signed: bool) -> LogicVec {
        if signed {
            self.sign_extend(width)
        } else {
            self.zero_extend(width)
        }
    }

    /// Concatenation `{self, low}` — `self` becomes the high part.
    pub fn concat(&self, low: &LogicVec) -> LogicVec {
        let width = self.width + low.width;
        let mut out = LogicVec::zeros(width);
        for i in 0..low.width {
            out.set_bit(i, low.bit(i));
        }
        for i in 0..self.width {
            out.set_bit(low.width + i, self.bit(i));
        }
        out
    }

    /// Replication `{n{self}}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn repeat(&self, n: usize) -> LogicVec {
        assert!(n > 0, "replication count must be positive");
        let mut out = self.clone();
        for _ in 1..n {
            out = out.concat(self);
        }
        out
    }

    /// Extracts `width` bits starting at bit `lo`. Bits beyond the source
    /// width read as `x` (matching out-of-range part-selects).
    pub fn slice(&self, lo: usize, width: usize) -> LogicVec {
        assert!(width > 0);
        let mut out = LogicVec::zeros(width);
        for i in 0..width {
            let src = lo + i;
            let b = if src < self.width {
                self.bit(src)
            } else {
                Bit::X
            };
            out.set_bit(i, b);
        }
        out
    }

    // ---- bitwise ----

    /// Bitwise AND with `x` propagation (`0 & x == 0`).
    pub fn and(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, |av, au, bv, bu| {
            // treat z as x: a bit is "one" if val&!unk, "zero" if !val&!unk
            let a_zero = !av & !au;
            let b_zero = !bv & !bu;
            let a_one = av & !au;
            let b_one = bv & !bu;
            let zero = a_zero | b_zero;
            let one = a_one & b_one;
            let unk = !(zero | one);
            (one, unk)
        })
    }

    /// Bitwise OR with `x` propagation (`1 | x == 1`).
    pub fn or(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, |av, au, bv, bu| {
            let a_one = av & !au;
            let b_one = bv & !bu;
            let a_zero = !av & !au;
            let b_zero = !bv & !bu;
            let one = a_one | b_one;
            let zero = a_zero & b_zero;
            let unk = !(zero | one);
            (one, unk)
        })
    }

    /// Bitwise XOR (`x` if either bit is unknown).
    pub fn xor(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, |av, au, bv, bu| {
            let unk = au | bu;
            let one = (av ^ bv) & !unk;
            (one, unk)
        })
    }

    /// Bitwise XNOR.
    pub fn xnor(&self, other: &LogicVec) -> LogicVec {
        self.xor(other).not()
    }

    fn bitwise(&self, other: &LogicVec, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> LogicVec {
        let width = self.width.max(other.width);
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        let mut out = LogicVec::zeros(width);
        for i in 0..a.val.len() {
            let (one, unk) = f(a.val[i], a.unk[i], b.val[i], b.unk[i]);
            out.val[i] = one | unk; // x encodes val=0; recompute below
            out.unk[i] = unk;
            out.val[i] = one; // known ones only; unknown bits are x (val=0)
        }
        out.normalize();
        out
    }

    /// Bitwise NOT (`~x == x`).
    pub fn not(&self) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..self.val.len() {
            out.unk[i] = self.unk[i];
            out.val[i] = !self.val[i] & !self.unk[i];
        }
        out.normalize();
        out
    }

    // ---- reductions ----

    /// Reduction AND.
    pub fn reduce_and(&self) -> Bit {
        let mut any_zero = false;
        let mut any_unk = false;
        for i in 0..self.width {
            match self.bit(i) {
                Bit::Zero => any_zero = true,
                Bit::One => {}
                _ => any_unk = true,
            }
        }
        if any_zero {
            Bit::Zero
        } else if any_unk {
            Bit::X
        } else {
            Bit::One
        }
    }

    /// Reduction OR.
    pub fn reduce_or(&self) -> Bit {
        match self.truthy() {
            Bit::One => Bit::One,
            Bit::Zero => Bit::Zero,
            _ => Bit::X,
        }
    }

    /// Reduction XOR (parity); `x` if any bit unknown.
    pub fn reduce_xor(&self) -> Bit {
        if !self.is_fully_known() {
            return Bit::X;
        }
        let parity = self.val.iter().fold(0u32, |acc, w| acc ^ w.count_ones()) & 1;
        if parity == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Number of one bits, or `None` if any bit is unknown.
    pub fn count_ones(&self) -> Option<u32> {
        if !self.is_fully_known() {
            return None;
        }
        Some(self.val.iter().map(|w| w.count_ones()).sum())
    }

    // ---- arithmetic (any unknown input -> all-x result) ----

    fn all_x_if_unknown(&self, other: &LogicVec, width: usize) -> Option<LogicVec> {
        if self.is_fully_known() && other.is_fully_known() {
            None
        } else {
            Some(LogicVec::filled_x(width))
        }
    }

    /// Wrapping addition at `max(widths)` bits.
    pub fn add(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        let mut out = LogicVec::zeros(width);
        let mut carry = 0u64;
        for i in 0..a.val.len() {
            let (s1, c1) = a.val[i].overflowing_add(b.val[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.val[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.normalize();
        out
    }

    /// Wrapping subtraction at `max(widths)` bits.
    pub fn sub(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        let b = other.zero_extend(width);
        self.zero_extend(width)
            .add(&b.not_bits().add(&LogicVec::from_u64(width, 1)))
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> LogicVec {
        if !self.is_fully_known() {
            return LogicVec::filled_x(self.width);
        }
        self.not_bits().add(&LogicVec::from_u64(self.width, 1))
    }

    /// Plain bit inversion ignoring x-propagation (internal two's-complement
    /// helper; only used on fully-known values).
    fn not_bits(&self) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in 0..self.val.len() {
            out.val[i] = !self.val[i];
        }
        out.normalize();
        out
    }

    /// Wrapping multiplication at `max(widths)` bits.
    pub fn mul(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        let n = a.val.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let cur = acc[i + j] as u128 + (a.val[i] as u128) * (b.val[j] as u128) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = LogicVec::zeros(width);
        out.val.copy_from_slice(&acc);
        out.normalize();
        out
    }

    /// Unsigned division; division by zero yields all-`x` (as in Verilog).
    pub fn div(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        match (self.to_u128(), other.to_u128()) {
            (Some(a), Some(b)) if b != 0 => LogicVec::from_u128(width, a / b),
            (Some(_), Some(_)) => LogicVec::filled_x(width),
            _ => {
                // Wide division: fall back to long division over bits.
                self.wide_divmod(other, width).0
            }
        }
    }

    /// Unsigned remainder; modulo zero yields all-`x`.
    pub fn rem(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        match (self.to_u128(), other.to_u128()) {
            (Some(a), Some(b)) if b != 0 => LogicVec::from_u128(width, a % b),
            (Some(_), Some(_)) => LogicVec::filled_x(width),
            _ => self.wide_divmod(other, width).1,
        }
    }

    fn wide_divmod(&self, other: &LogicVec, width: usize) -> (LogicVec, LogicVec) {
        if other.truthy() != Bit::One {
            return (LogicVec::filled_x(width), LogicVec::filled_x(width));
        }
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        let mut quot = LogicVec::zeros(width);
        let mut rem = LogicVec::zeros(width);
        for i in (0..width).rev() {
            rem = rem.shl_const(1);
            if a.bit(i) == Bit::One {
                rem.set_bit(0, Bit::One);
            }
            if rem.cmp_unsigned(&b) != std::cmp::Ordering::Less {
                rem = rem.sub(&b);
                quot.set_bit(i, Bit::One);
            }
        }
        (quot, rem)
    }

    fn shl_const(&self, n: usize) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        for i in (n..self.width).rev() {
            out.set_bit(i, self.bit(i - n));
        }
        out
    }

    fn cmp_unsigned(&self, other: &LogicVec) -> std::cmp::Ordering {
        let width = self.width.max(other.width);
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        for i in (0..a.val.len()).rev() {
            match a.val[i].cmp(&b.val[i]) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }

    fn cmp_signed(&self, other: &LogicVec) -> std::cmp::Ordering {
        let width = self.width.max(other.width).max(1);
        let a = self.sign_extend(width);
        let b = other.sign_extend(width);
        let a_neg = a.bit(width - 1) == Bit::One;
        let b_neg = b.bit(width - 1) == Bit::One;
        match (a_neg, b_neg) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => a.cmp_unsigned(&b),
        }
    }

    /// Relational comparison producing a 1-bit result; `x` if any input
    /// bit is unknown. `signed` selects two's-complement ordering.
    pub fn lt(&self, other: &LogicVec, signed: bool) -> Bit {
        if !self.is_fully_known() || !other.is_fully_known() {
            return Bit::X;
        }
        let ord = if signed {
            self.cmp_signed(other)
        } else {
            self.cmp_unsigned(other)
        };
        if ord == std::cmp::Ordering::Less {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Logical equality `==`: `x` if any compared bit is unknown.
    pub fn eq_logic(&self, other: &LogicVec) -> Bit {
        let width = self.width.max(other.width);
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        if !a.is_fully_known() || !b.is_fully_known() {
            return Bit::X;
        }
        if a.val == b.val {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Case equality `===`: exact four-state comparison, always known.
    pub fn eq_case(&self, other: &LogicVec) -> Bit {
        let width = self.width.max(other.width);
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        if a.val == b.val && a.unk == b.unk {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// `casez` match: `z` bits in `pattern` (or in `self`) are wildcards.
    pub fn casez_match(&self, pattern: &LogicVec) -> bool {
        let width = self.width.max(pattern.width);
        let a = self.zero_extend(width);
        let p = pattern.zero_extend(width);
        for i in 0..width {
            let pb = p.bit(i);
            let ab = a.bit(i);
            if pb == Bit::Z || ab == Bit::Z {
                continue;
            }
            if pb != ab {
                return false;
            }
        }
        true
    }

    // ---- shifts ----

    /// Logical shift left by a possibly-unknown amount.
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            None => LogicVec::filled_x(self.width),
            Some(n) => {
                if n as usize >= self.width {
                    LogicVec::zeros(self.width)
                } else {
                    let n = n as usize;
                    let mut out = LogicVec::zeros(self.width);
                    for i in n..self.width {
                        out.set_bit(i, self.bit(i - n));
                    }
                    out
                }
            }
        }
    }

    /// Logical shift right.
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            None => LogicVec::filled_x(self.width),
            Some(n) => {
                if n as usize >= self.width {
                    LogicVec::zeros(self.width)
                } else {
                    let n = n as usize;
                    let mut out = LogicVec::zeros(self.width);
                    for i in 0..self.width - n {
                        out.set_bit(i, self.bit(i + n));
                    }
                    out
                }
            }
        }
    }

    /// Arithmetic shift right (replicates the MSB).
    pub fn ashr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            None => LogicVec::filled_x(self.width),
            Some(n) => {
                let msb = self.bit(self.width - 1);
                let n = (n as usize).min(self.width);
                let mut out = LogicVec::zeros(self.width);
                for i in 0..self.width {
                    let b = if i + n < self.width {
                        self.bit(i + n)
                    } else {
                        msb
                    };
                    out.set_bit(i, b);
                }
                out
            }
        }
    }

    // ---- formatting ----

    /// Verilog `%b` formatting.
    pub fn to_binary_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| self.bit(i).to_char())
            .collect()
    }

    /// Verilog `%h` formatting: a nibble containing any `x` prints `x`,
    /// any `z` prints `z` (x wins over z when mixed).
    pub fn to_hex_string(&self) -> String {
        let nibbles = self.width.div_ceil(4);
        let mut s = String::with_capacity(nibbles);
        for n in (0..nibbles).rev() {
            let mut v = 0u8;
            let mut has_x = false;
            let mut has_z = false;
            let mut all_z = true;
            for b in 0..4 {
                let i = n * 4 + b;
                if i >= self.width {
                    all_z = false;
                    continue;
                }
                match self.bit(i) {
                    Bit::Zero => all_z = false,
                    Bit::One => {
                        v |= 1 << b;
                        all_z = false;
                    }
                    Bit::X => {
                        has_x = true;
                        all_z = false;
                    }
                    Bit::Z => has_z = true,
                }
            }
            if has_x {
                s.push('x');
            } else if all_z && has_z {
                s.push('z');
            } else if has_z {
                s.push('x');
            } else {
                s.push(char::from_digit(v as u32, 16).expect("nibble in range"));
            }
        }
        s
    }

    /// Verilog `%0d` formatting: decimal, or `x`/`z` when unknown.
    pub fn to_decimal_string(&self) -> String {
        if self.is_fully_known() {
            return self.to_decimal_known();
        }
        if self.is_fully_unknown() {
            // all x -> "x", all z -> "z"
            let all_z = (0..self.width).all(|i| self.bit(i) == Bit::Z);
            if all_z {
                return "z".to_string();
            }
            let all_x = (0..self.width).all(|i| self.bit(i) == Bit::X);
            if all_x {
                return "x".to_string();
            }
        }
        "X".to_string()
    }

    fn to_decimal_known(&self) -> String {
        if let Some(v) = self.to_u128() {
            return v.to_string();
        }
        // Arbitrary width: repeated division by 10^19.
        let mut words: Vec<u64> = self.val.clone();
        let mut digits = String::new();
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        loop {
            let mut rem: u64 = 0;
            let mut all_zero = true;
            for w in words.iter_mut().rev() {
                let cur = ((rem as u128) << 64) | (*w as u128);
                *w = (cur / CHUNK as u128) as u64;
                rem = (cur % CHUNK as u128) as u64;
                if *w != 0 {
                    all_zero = false;
                }
            }
            if all_zero {
                digits.insert_str(0, &rem.to_string());
                break;
            } else {
                digits.insert_str(0, &format!("{rem:019}"));
            }
        }
        digits
    }
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width, self.to_binary_string())
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

impl fmt::Binary for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_binary_string())
    }
}

impl fmt::LowerHex for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex_string())
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> Self {
        LogicVec::from_bool(b)
    }
}

impl From<Bit> for LogicVec {
    fn from(b: Bit) -> Self {
        LogicVec::from_bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut v = LogicVec::zeros(130);
        for (i, b) in [Bit::One, Bit::X, Bit::Z, Bit::Zero]
            .iter()
            .cycle()
            .take(130)
            .enumerate()
        {
            v.set_bit(i, *b);
        }
        for (i, b) in [Bit::One, Bit::X, Bit::Z, Bit::Zero]
            .iter()
            .cycle()
            .take(130)
            .enumerate()
        {
            assert_eq!(v.bit(i), *b, "bit {i}");
        }
    }

    #[test]
    fn from_u64_masks_width() {
        let v = LogicVec::from_u64(4, 0xff);
        assert_eq!(v.to_u64(), Some(0xf));
    }

    #[test]
    fn filled_x_unknown() {
        let v = LogicVec::filled_x(7);
        assert!(!v.is_fully_known());
        assert!(v.is_fully_unknown());
        assert_eq!(v.to_u64(), None);
        assert_eq!(v.to_decimal_string(), "x");
    }

    #[test]
    fn add_wraps() {
        let a = LogicVec::from_u64(4, 0xf);
        let b = LogicVec::from_u64(4, 1);
        assert_eq!(a.add(&b).to_u64(), Some(0));
    }

    #[test]
    fn add_multiword_carry() {
        let a = LogicVec::from_u128(128, u64::MAX as u128);
        let b = LogicVec::from_u64(128, 1);
        assert_eq!(a.add(&b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn sub_and_neg() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 7);
        assert_eq!(a.sub(&b).to_u64(), Some(0xfe)); // -2 mod 256
        assert_eq!(b.neg().to_u64(), Some(0xf9));
    }

    #[test]
    fn mul_wide() {
        let a = LogicVec::from_u64(64, u64::MAX);
        let b = LogicVec::from_u64(64, 3);
        assert_eq!(a.mul(&b).to_u64(), Some(u64::MAX.wrapping_mul(3)));
    }

    #[test]
    fn div_rem() {
        let a = LogicVec::from_u64(8, 23);
        let b = LogicVec::from_u64(8, 5);
        assert_eq!(a.div(&b).to_u64(), Some(4));
        assert_eq!(a.rem(&b).to_u64(), Some(3));
        let z = LogicVec::zeros(8);
        assert!(!a.div(&z).is_fully_known());
    }

    #[test]
    fn arithmetic_x_poisons() {
        let a = LogicVec::filled_x(8);
        let b = LogicVec::from_u64(8, 3);
        assert!(a.add(&b).is_fully_unknown());
        assert!(b.sub(&a).is_fully_unknown());
        assert!(a.mul(&b).is_fully_unknown());
    }

    #[test]
    fn bitwise_x_rules() {
        let x = LogicVec::filled_x(1);
        let one = LogicVec::from_u64(1, 1);
        let zero = LogicVec::zeros(1);
        assert_eq!(zero.and(&x).bit(0), Bit::Zero);
        assert_eq!(one.and(&x).bit(0), Bit::X);
        assert_eq!(one.or(&x).bit(0), Bit::One);
        assert_eq!(zero.or(&x).bit(0), Bit::X);
        assert_eq!(one.xor(&x).bit(0), Bit::X);
        assert_eq!(x.not().bit(0), Bit::X);
    }

    #[test]
    fn z_treated_as_x_in_gates() {
        let z = LogicVec::filled_z(1);
        let one = LogicVec::from_u64(1, 1);
        assert_eq!(one.and(&z).bit(0), Bit::X);
        assert_eq!(one.or(&z).bit(0), Bit::One);
    }

    #[test]
    fn reductions() {
        let v = LogicVec::from_u64(4, 0b1011);
        assert_eq!(v.reduce_and(), Bit::Zero);
        assert_eq!(v.reduce_or(), Bit::One);
        assert_eq!(v.reduce_xor(), Bit::One);
        let ones = LogicVec::ones(4);
        assert_eq!(ones.reduce_and(), Bit::One);
        let mut withx = v.clone();
        withx.set_bit(2, Bit::X);
        assert_eq!(withx.reduce_or(), Bit::One); // known one dominates
        assert_eq!(withx.reduce_xor(), Bit::X);
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 0x80);
        let b = LogicVec::from_u64(8, 0x01);
        assert_eq!(a.lt(&b, false), Bit::Zero);
        assert_eq!(a.lt(&b, true), Bit::One); // 0x80 = -128 signed
        assert_eq!(a.eq_logic(&a.clone()), Bit::One);
        assert_eq!(a.eq_logic(&b), Bit::Zero);
        let x = LogicVec::filled_x(8);
        assert_eq!(a.eq_logic(&x), Bit::X);
        assert_eq!(x.eq_case(&LogicVec::filled_x(8)), Bit::One);
    }

    #[test]
    fn casez_wildcards() {
        let v = LogicVec::from_u64(4, 0b1010);
        let mut pat = LogicVec::from_u64(4, 0b1000);
        pat.set_bit(0, Bit::Z);
        pat.set_bit(1, Bit::Z);
        assert!(v.casez_match(&pat));
        let pat2 = LogicVec::from_u64(4, 0b0000);
        assert!(!v.casez_match(&pat2));
    }

    #[test]
    fn shifts() {
        let v = LogicVec::from_u64(8, 0b1001_0110);
        assert_eq!(v.shl(&LogicVec::from_u64(3, 2)).to_u64(), Some(0b0101_1000));
        assert_eq!(v.shr(&LogicVec::from_u64(3, 2)).to_u64(), Some(0b0010_0101));
        assert_eq!(
            v.ashr(&LogicVec::from_u64(3, 2)).to_u64(),
            Some(0b1110_0101)
        );
        assert_eq!(v.shl(&LogicVec::from_u64(8, 200)).to_u64(), Some(0));
        assert_eq!(v.ashr(&LogicVec::from_u64(8, 200)).to_u64(), Some(0xff));
    }

    #[test]
    fn arithmetic_shift_known_case_shift18() {
        // The paper's shift18 demo: 64-bit arithmetic shift right by 8.
        let q = LogicVec::from_u64(64, 0x8000_0000_0000_0000);
        let shifted = q.ashr(&LogicVec::from_u64(8, 8));
        assert_eq!(shifted.to_u64(), Some(0xff80_0000_0000_0000));
    }

    #[test]
    fn concat_repeat_slice() {
        let a = LogicVec::from_u64(4, 0xa);
        let b = LogicVec::from_u64(4, 0x5);
        let c = a.concat(&b);
        assert_eq!(c.width(), 8);
        assert_eq!(c.to_u64(), Some(0xa5));
        let r = b.repeat(3);
        assert_eq!(r.width(), 12);
        assert_eq!(r.to_u64(), Some(0x555));
        assert_eq!(c.slice(4, 4).to_u64(), Some(0xa));
        // out-of-range part select reads x
        assert_eq!(c.slice(6, 4).bit(3), Bit::X);
    }

    #[test]
    fn extends() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.zero_extend(8).to_u64(), Some(0b0000_1010));
        assert_eq!(v.sign_extend(8).to_u64(), Some(0b1111_1010));
        assert_eq!(v.sign_extend(2).to_u64(), Some(0b10));
        let mut x = v.clone();
        x.set_bit(3, Bit::X);
        assert_eq!(x.sign_extend(6).bit(5), Bit::X);
    }

    #[test]
    fn to_i64_signed() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.to_i64(), Some(-6));
        let w = LogicVec::from_u64(4, 0b0101);
        assert_eq!(w.to_i64(), Some(5));
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::zeros(8).truthy(), Bit::Zero);
        assert_eq!(LogicVec::from_u64(8, 2).truthy(), Bit::One);
        assert_eq!(LogicVec::filled_x(8).truthy(), Bit::X);
        let mut v = LogicVec::filled_x(8);
        v.set_bit(3, Bit::One);
        assert_eq!(v.truthy(), Bit::One);
    }

    #[test]
    fn formatting() {
        let v = LogicVec::from_u64(8, 0xa5);
        assert_eq!(v.to_binary_string(), "10100101");
        assert_eq!(v.to_hex_string(), "a5");
        assert_eq!(v.to_decimal_string(), "165");
        let mut w = v.clone();
        w.set_bit(0, Bit::X);
        assert_eq!(w.to_hex_string(), "ax");
        assert_eq!(w.to_decimal_string(), "X");
        assert_eq!(format!("{:b}", v), "10100101");
        assert_eq!(format!("{:x}", v), "a5");
    }

    #[test]
    fn decimal_wide() {
        let v = LogicVec::from_u128(128, u128::MAX);
        assert_eq!(v.to_decimal_string(), u128::MAX.to_string());
        let big = LogicVec::ones(192);
        // 2^192 - 1
        assert_eq!(
            big.to_decimal_string(),
            "6277101735386680763835789423207666416102355444464034512895"
        );
    }

    #[test]
    fn from_bits_msb_first_order() {
        let v = LogicVec::from_bits_msb_first(&[Bit::One, Bit::Zero, Bit::X, Bit::One]);
        assert_eq!(v.width(), 4);
        assert_eq!(v.bit(3), Bit::One);
        assert_eq!(v.bit(2), Bit::Zero);
        assert_eq!(v.bit(1), Bit::X);
        assert_eq!(v.bit(0), Bit::One);
    }
}
