//! Four-state logic values.
//!
//! A [`LogicVec`] stores a fixed-width vector of IEEE-1364 four-state bits
//! (`0`, `1`, `x`, `z`) in two bit planes, the classic aval/bval encoding
//! used by VPI and most event-driven simulators:
//!
//! | bit | `val` plane | `unk` plane |
//! |-----|-------------|-------------|
//! | `0` | 0           | 0           |
//! | `1` | 1           | 0           |
//! | `x` | 0           | 1           |
//! | `z` | 1           | 1           |
//!
//! All operators follow the Verilog semantics used by the simulator and the
//! checker IR interpreter: bitwise operators propagate `x` per the standard
//! truth tables, arithmetic and relational operators produce an all-`x`
//! result if any input bit is unknown, and `===`/`!==` compare the four-state
//! encoding exactly.
//!
//! # Representation
//!
//! Widths up to 64 bits — the overwhelmingly common case in the benchmark
//! designs — are stored **inline** as two `u64` plane words with no heap
//! allocation; wider vectors spill to heap-allocated word vectors. The
//! variant is determined solely by the width, so plane-level equality and
//! hashing remain value equality. On top of the value-returning operators
//! the type offers **in-place mutating ops** (`and_assign`, `add_assign`,
//! `not_assign`, [`LogicVec::assign_resize`], …) used by the bytecode
//! simulator so steady-state expression evaluation performs zero
//! allocations.

use std::fmt;

/// A single four-state bit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Bit {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Unknown.
    X,
    /// High impedance.
    Z,
}

impl Bit {
    /// Returns `true` for [`Bit::Zero`] and [`Bit::One`].
    pub fn is_known(self) -> bool {
        matches!(self, Bit::Zero | Bit::One)
    }

    /// The character Verilog sources use for this bit (`0`, `1`, `x`, `z`).
    pub fn to_char(self) -> char {
        match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'x',
            Bit::Z => 'z',
        }
    }

    /// The `(unk, val)` plane encoding of this bit.
    #[inline]
    fn planes(self) -> (u64, u64) {
        match self {
            Bit::Zero => (0, 0),
            Bit::One => (0, 1),
            Bit::X => (1, 0),
            Bit::Z => (1, 1),
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// A fixed-width vector of four-state bits.
///
/// Bit 0 is the least significant bit. Widths of any size are supported;
/// storage is in 64-bit words — inline for widths ≤ 64, heap-spilled
/// above. Unused high bits of the last word are always kept at zero in
/// both planes (the *normalized* invariant), so plane-level equality is
/// value equality.
///
/// # Examples
///
/// ```
/// use correctbench_verilog::logic::LogicVec;
///
/// let a = LogicVec::from_u64(8, 0x5a);
/// let b = LogicVec::from_u64(8, 0x0f);
/// assert_eq!(a.and(&b), LogicVec::from_u64(8, 0x0a));
/// assert_eq!(a.add(&b).to_u64(), Some(0x69));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LogicVec {
    width: usize,
    repr: Repr,
}

/// Plane storage. The variant is a pure function of the width (≤ 64 ⇒
/// `Small`), which keeps derived equality/hashing value-accurate.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    /// One inline word per plane; no allocation.
    Small { val: u64, unk: u64 },
    /// Spilled storage for widths above 64.
    Wide { val: Vec<u64>, unk: Vec<u64> },
}

fn words_for(width: usize) -> usize {
    width.div_ceil(64).max(1)
}

fn top_mask(width: usize) -> u64 {
    let rem = width % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Reads the 64-bit chunk of `words` starting at bit position `bit`,
/// zero-filled beyond the end of the slice.
#[inline]
fn get_chunk(words: &[u64], bit: usize) -> u64 {
    let w = bit / 64;
    let r = bit % 64;
    let lo = words.get(w).copied().unwrap_or(0) >> r;
    if r == 0 {
        lo
    } else {
        lo | (words.get(w + 1).copied().unwrap_or(0) << (64 - r))
    }
}

/// Overwrites `n` bits of `dst` starting at `dst_lo` with the bits of
/// `src` starting at `src_lo` (zero-filled beyond `src`). Word-level.
fn copy_words_range(dst: &mut [u64], dst_lo: usize, src: &[u64], src_lo: usize, n: usize) {
    let mut done = 0usize;
    while done < n {
        let d = dst_lo + done;
        let dw = d / 64;
        let dr = d % 64;
        let take = (64 - dr).min(n - done);
        let mask = if take == 64 {
            u64::MAX
        } else {
            ((1u64 << take) - 1) << dr
        };
        let chunk = get_chunk(src, src_lo + done) << dr;
        dst[dw] = (dst[dw] & !mask) | (chunk & mask);
        done += take;
    }
}

/// Fills `n` bits of `words` starting at `lo` with `bit` (0 or all-ones
/// pattern). Word-level.
fn fill_words_range(words: &mut [u64], lo: usize, n: usize, bit: bool) {
    let mut done = 0usize;
    while done < n {
        let d = lo + done;
        let dw = d / 64;
        let dr = d % 64;
        let take = (64 - dr).min(n - done);
        let mask = if take == 64 {
            u64::MAX
        } else {
            ((1u64 << take) - 1) << dr
        };
        if bit {
            words[dw] |= mask;
        } else {
            words[dw] &= !mask;
        }
        done += take;
    }
}

impl LogicVec {
    /// An all-`x` vector, the value of every `reg` before first assignment.
    pub fn filled_x(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let mut v = LogicVec::zeros(width);
        {
            let (_, unk) = v.planes_mut();
            for w in unk.iter_mut() {
                *w = u64::MAX;
            }
        }
        v.normalize();
        v
    }

    /// An all-`z` vector.
    pub fn filled_z(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let mut v = LogicVec::zeros(width);
        {
            let (val, unk) = v.planes_mut();
            for w in val.iter_mut() {
                *w = u64::MAX;
            }
            for w in unk.iter_mut() {
                *w = u64::MAX;
            }
        }
        v.normalize();
        v
    }

    /// An all-zero vector.
    pub fn zeros(width: usize) -> Self {
        assert!(width > 0, "logic vector width must be positive");
        let repr = if width <= 64 {
            Repr::Small { val: 0, unk: 0 }
        } else {
            let n = words_for(width);
            Repr::Wide {
                val: vec![0; n],
                unk: vec![0; n],
            }
        };
        LogicVec { width, repr }
    }

    /// An all-ones vector.
    pub fn ones(width: usize) -> Self {
        let mut v = LogicVec::zeros(width);
        {
            let (val, _) = v.planes_mut();
            for w in val.iter_mut() {
                *w = u64::MAX;
            }
        }
        v.normalize();
        v
    }

    /// Builds a vector from the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_u64(width: usize, value: u64) -> Self {
        let mut v = LogicVec::zeros(width);
        v.planes_mut().0[0] = value;
        v.normalize();
        v
    }

    /// Builds a vector from the low `width` bits of a `u128`.
    pub fn from_u128(width: usize, value: u128) -> Self {
        let mut v = LogicVec::zeros(width);
        {
            let (val, _) = v.planes_mut();
            val[0] = value as u64;
            if val.len() > 1 {
                val[1] = (value >> 64) as u64;
            }
        }
        v.normalize();
        v
    }

    /// A 1-bit vector from a boolean.
    pub fn from_bool(b: bool) -> Self {
        LogicVec::from_u64(1, b as u64)
    }

    /// A 1-bit vector from a [`Bit`].
    pub fn from_bit(b: Bit) -> Self {
        let (u, v) = b.planes();
        LogicVec {
            width: 1,
            repr: Repr::Small { val: v, unk: u },
        }
    }

    /// Builds a vector from bits listed most-significant first, as they
    /// appear in a Verilog binary literal.
    pub fn from_bits_msb_first(bits: &[Bit]) -> Self {
        assert!(!bits.is_empty(), "bit list must be non-empty");
        let mut v = LogicVec::zeros(bits.len());
        for (i, b) in bits.iter().rev().enumerate() {
            v.set_bit(i, *b);
        }
        v
    }

    /// The two plane word slices `(val, unk)`.
    #[inline]
    fn planes(&self) -> (&[u64], &[u64]) {
        match &self.repr {
            Repr::Small { val, unk } => (std::slice::from_ref(val), std::slice::from_ref(unk)),
            Repr::Wide { val, unk } => (val, unk),
        }
    }

    /// Mutable plane word slices `(val, unk)`.
    #[inline]
    fn planes_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        match &mut self.repr {
            Repr::Small { val, unk } => (std::slice::from_mut(val), std::slice::from_mut(unk)),
            Repr::Wide { val, unk } => (val, unk),
        }
    }

    /// `true` when the value lives inline (width ≤ 64, no heap storage).
    #[cfg(test)]
    fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small { .. })
    }

    /// Restores the normalized invariant (clears unused high bits).
    fn normalize(&mut self) {
        let m = top_mask(self.width);
        match &mut self.repr {
            Repr::Small { val, unk } => {
                *val &= m;
                *unk &= m;
            }
            Repr::Wide { val, unk } => {
                let last = val.len() - 1;
                val[last] &= m;
                unk[last] &= m;
            }
        }
    }

    /// The bit width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn bit(&self, i: usize) -> Bit {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let (v, u) = match &self.repr {
            Repr::Small { val, unk } => ((*val >> i) & 1, (*unk >> i) & 1),
            Repr::Wide { val, unk } => {
                let w = i / 64;
                let b = i % 64;
                ((val[w] >> b) & 1, (unk[w] >> b) & 1)
            }
        };
        match (u, v) {
            (0, 0) => Bit::Zero,
            (0, 1) => Bit::One,
            (1, 0) => Bit::X,
            _ => Bit::Z,
        }
    }

    /// Writes bit `i` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[inline]
    pub fn set_bit(&mut self, i: usize, b: Bit) {
        assert!(
            i < self.width,
            "bit index {i} out of range for width {}",
            self.width
        );
        let (u, v) = b.planes();
        match &mut self.repr {
            Repr::Small { val, unk } => {
                *val = (*val & !(1 << i)) | (v << i);
                *unk = (*unk & !(1 << i)) | (u << i);
            }
            Repr::Wide { val, unk } => {
                let w = i / 64;
                let sh = i % 64;
                val[w] = (val[w] & !(1 << sh)) | (v << sh);
                unk[w] = (unk[w] & !(1 << sh)) | (u << sh);
            }
        }
    }

    /// `true` when no bit is `x` or `z`.
    #[inline]
    pub fn is_fully_known(&self) -> bool {
        match &self.repr {
            Repr::Small { unk, .. } => *unk == 0,
            Repr::Wide { unk, .. } => unk.iter().all(|&w| w == 0),
        }
    }

    /// `true` when every bit is `x` or `z`.
    pub fn is_fully_unknown(&self) -> bool {
        let m = top_mask(self.width);
        let (_, unk) = self.planes();
        let last = unk.len() - 1;
        unk[..last].iter().all(|&w| w == u64::MAX) && unk[last] == m
    }

    /// The value as a `u64` if fully known and all bits above 64 are zero.
    pub fn to_u64(&self) -> Option<u64> {
        if !self.is_fully_known() {
            return None;
        }
        let (val, _) = self.planes();
        if val[1..].iter().any(|&w| w != 0) {
            return None;
        }
        Some(val[0])
    }

    /// The value as a `u128` if fully known and all bits above 128 are zero.
    pub fn to_u128(&self) -> Option<u128> {
        if !self.is_fully_known() {
            return None;
        }
        let (val, _) = self.planes();
        if val.len() > 2 && val[2..].iter().any(|&w| w != 0) {
            return None;
        }
        let lo = val[0] as u128;
        let hi = if val.len() > 1 { val[1] as u128 } else { 0 };
        Some(lo | (hi << 64))
    }

    /// Interprets the vector as a signed integer, if fully known and the
    /// magnitude fits an `i64`.
    pub fn to_i64(&self) -> Option<i64> {
        if !self.is_fully_known() {
            return None;
        }
        let sext = self.sign_extend(64.max(self.width));
        let (val, _) = sext.planes();
        if sext.width > 64 {
            // All words above the first must be a sign extension of bit 63.
            let neg = (val[0] >> 63) & 1 == 1;
            let fill = if neg { u64::MAX } else { 0 };
            let m = top_mask(sext.width);
            let last = val.len() - 1;
            for (i, &w) in val.iter().enumerate().skip(1) {
                let expect = if i == last { fill & m } else { fill };
                if w != expect {
                    return None;
                }
            }
        }
        Some(val[0] as i64)
    }

    /// Truth value per Verilog: `1` if any bit is one, `0` if all bits are
    /// zero, `x` otherwise.
    pub fn truthy(&self) -> Bit {
        let (val, unk) = self.planes();
        let any_one = val.iter().zip(unk).any(|(&v, &u)| v & !u != 0);
        if any_one {
            return Bit::One;
        }
        if self.is_fully_known() {
            Bit::Zero
        } else {
            Bit::X
        }
    }

    /// `true` when [`truthy`](Self::truthy) is [`Bit::One`].
    pub fn is_true(&self) -> bool {
        self.truthy() == Bit::One
    }

    /// Zero- or sign-less resize: truncates or zero-extends to `width`.
    pub fn zero_extend(&self, width: usize) -> LogicVec {
        assert!(width > 0);
        if width == self.width {
            return self.clone();
        }
        let mut out = LogicVec::zeros(width);
        out.assign_resize(self, false);
        out
    }

    /// Truncates or sign-extends (replicating the MSB, including `x`/`z`).
    pub fn sign_extend(&self, width: usize) -> LogicVec {
        assert!(width > 0);
        if width == self.width {
            return self.clone();
        }
        let mut out = LogicVec::zeros(width);
        out.assign_resize(self, true);
        out
    }

    /// Resize honouring a signedness flag.
    pub fn resize(&self, width: usize, signed: bool) -> LogicVec {
        if signed {
            self.sign_extend(width)
        } else {
            self.zero_extend(width)
        }
    }

    /// In-place resize: overwrites `self` with `src` truncated or extended
    /// to `self`'s width (sign-extension replicates `src`'s MSB including
    /// `x`/`z` when `signed`). The zero-allocation workhorse behind
    /// [`LogicVec::resize`] and the bytecode executor's signal loads.
    pub fn assign_resize(&mut self, src: &LogicVec, signed: bool) {
        let width = self.width;
        let copy = src.width.min(width);
        {
            let (sv, su) = src.planes();
            let (dv, du) = self.planes_mut();
            copy_words_range(dv, 0, sv, 0, copy);
            copy_words_range(du, 0, su, 0, copy);
            if width > copy {
                let (fill_u, fill_v) = if signed {
                    src.bit(src.width - 1).planes()
                } else {
                    (0, 0)
                };
                let (dv, du) = self.planes_mut();
                fill_words_range(dv, copy, width - copy, fill_v == 1);
                fill_words_range(du, copy, width - copy, fill_u == 1);
            }
        }
        self.normalize();
    }

    /// In-place copy from an equal-width source. No allocation.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[inline]
    pub fn copy_from(&mut self, src: &LogicVec) {
        assert_eq!(self.width, src.width, "copy_from width mismatch");
        match (&mut self.repr, &src.repr) {
            (Repr::Small { val, unk }, Repr::Small { val: sv, unk: su }) => {
                *val = *sv;
                *unk = *su;
            }
            (Repr::Wide { val, unk }, Repr::Wide { val: sv, unk: su }) => {
                val.copy_from_slice(sv);
                unk.copy_from_slice(su);
            }
            _ => unreachable!("representation is width-determined"),
        }
    }

    /// Overwrites every bit with `x` in place.
    pub fn set_all_x(&mut self) {
        let (val, unk) = self.planes_mut();
        for w in val.iter_mut() {
            *w = 0;
        }
        for w in unk.iter_mut() {
            *w = u64::MAX;
        }
        self.normalize();
    }

    /// In-place `slice`-then-zero-extend: overwrites `self` with
    /// `src.slice(lo, w)` zero-extended (or truncated) to `self`'s width —
    /// bits of the slice beyond `src`'s width read `x`, exactly as
    /// [`LogicVec::slice`] produces them.
    pub fn assign_slice_ext(&mut self, src: &LogicVec, lo: usize, w: usize) {
        let width = self.width;
        let n = w.min(width);
        let avail = src.width.saturating_sub(lo).min(n);
        {
            let (sv, su) = src.planes();
            let (dv, du) = self.planes_mut();
            copy_words_range(dv, 0, sv, lo, avail);
            copy_words_range(du, 0, su, lo, avail);
            // Slice bits beyond the source width read x.
            fill_words_range(dv, avail, n - avail, false);
            fill_words_range(du, avail, n - avail, true);
            // Zero-extension above the slice width.
            fill_words_range(dv, n, width - n, false);
            fill_words_range(du, n, width - n, false);
        }
        self.normalize();
    }

    /// Writes up to `n` bits of `bits` into `self` starting at `lo`
    /// (clipped to both widths), returning whether any stored bit actually
    /// changed. In-place and allocation-free; the simulator's commit path
    /// uses the change flag to decide whether watchers fire.
    pub fn write_range(&mut self, lo: usize, bits: &LogicVec, n: usize) -> bool {
        if lo >= self.width {
            return false;
        }
        let count = n.min(bits.width).min(self.width - lo);
        let mut changed = false;
        let (sv, su) = bits.planes();
        let (dv, du) = self.planes_mut();
        let mut done = 0usize;
        while done < count {
            let d = lo + done;
            let dw = d / 64;
            let dr = d % 64;
            let take = (64 - dr).min(count - done);
            let mask = if take == 64 {
                u64::MAX
            } else {
                ((1u64 << take) - 1) << dr
            };
            let new_v = (dv[dw] & !mask) | ((get_chunk(sv, done) << dr) & mask);
            let new_u = (du[dw] & !mask) | ((get_chunk(su, done) << dr) & mask);
            changed |= new_v != dv[dw] || new_u != du[dw];
            dv[dw] = new_v;
            du[dw] = new_u;
            done += take;
        }
        changed
    }

    /// Concatenation `{self, low}` — `self` becomes the high part.
    pub fn concat(&self, low: &LogicVec) -> LogicVec {
        let width = self.width + low.width;
        let mut out = LogicVec::zeros(width);
        {
            let (lv, lu) = low.planes();
            let (hv, hu) = self.planes();
            let (dv, du) = out.planes_mut();
            copy_words_range(dv, 0, lv, 0, low.width);
            copy_words_range(du, 0, lu, 0, low.width);
            copy_words_range(dv, low.width, hv, 0, self.width);
            copy_words_range(du, low.width, hu, 0, self.width);
        }
        out
    }

    /// Replication `{n{self}}`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn repeat(&self, n: usize) -> LogicVec {
        assert!(n > 0, "replication count must be positive");
        let mut out = LogicVec::zeros(self.width * n);
        {
            let (sv, su) = self.planes();
            let (dv, du) = out.planes_mut();
            for i in 0..n {
                copy_words_range(dv, i * self.width, sv, 0, self.width);
                copy_words_range(du, i * self.width, su, 0, self.width);
            }
        }
        out
    }

    /// Extracts `width` bits starting at bit `lo`. Bits beyond the source
    /// width read as `x` (matching out-of-range part-selects).
    pub fn slice(&self, lo: usize, width: usize) -> LogicVec {
        assert!(width > 0);
        let mut out = LogicVec::zeros(width);
        out.assign_slice_ext(self, lo, width);
        out
    }

    // ---- bitwise ----

    /// Bitwise AND with `x` propagation (`0 & x == 0`).
    pub fn and(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, and_words)
    }

    /// In-place bitwise AND with an equal-width operand.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn and_assign(&mut self, other: &LogicVec) {
        self.bitwise_assign(other, and_words)
    }

    /// Bitwise OR with `x` propagation (`1 | x == 1`).
    pub fn or(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, or_words)
    }

    /// In-place bitwise OR with an equal-width operand.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn or_assign(&mut self, other: &LogicVec) {
        self.bitwise_assign(other, or_words)
    }

    /// Bitwise XOR (`x` if either bit is unknown).
    pub fn xor(&self, other: &LogicVec) -> LogicVec {
        self.bitwise(other, xor_words)
    }

    /// In-place bitwise XOR with an equal-width operand.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor_assign(&mut self, other: &LogicVec) {
        self.bitwise_assign(other, xor_words)
    }

    /// Bitwise XNOR.
    pub fn xnor(&self, other: &LogicVec) -> LogicVec {
        self.xor(other).not()
    }

    /// In-place bitwise XNOR with an equal-width operand.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xnor_assign(&mut self, other: &LogicVec) {
        self.xor_assign(other);
        self.not_assign();
    }

    fn bitwise(&self, other: &LogicVec, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) -> LogicVec {
        if self.width == other.width {
            let mut out = self.clone();
            out.bitwise_assign(other, f);
            return out;
        }
        let width = self.width.max(other.width);
        let mut out = self.zero_extend(width);
        let b = other.zero_extend(width);
        out.bitwise_assign(&b, f);
        out
    }

    fn bitwise_assign(&mut self, other: &LogicVec, f: impl Fn(u64, u64, u64, u64) -> (u64, u64)) {
        assert_eq!(self.width, other.width, "bitwise width mismatch");
        let (bv, bu) = other.planes();
        let (av, au) = self.planes_mut();
        for i in 0..av.len() {
            let (one, unk) = f(av[i], au[i], bv[i], bu[i]);
            av[i] = one;
            au[i] = unk;
        }
        self.normalize();
    }

    /// Bitwise NOT (`~x == x`).
    pub fn not(&self) -> LogicVec {
        let mut out = self.clone();
        out.not_assign();
        out
    }

    /// In-place bitwise NOT.
    pub fn not_assign(&mut self) {
        let (val, unk) = self.planes_mut();
        for i in 0..val.len() {
            val[i] = !val[i] & !unk[i];
        }
        self.normalize();
    }

    // ---- reductions ----

    /// Reduction AND.
    pub fn reduce_and(&self) -> Bit {
        let m = top_mask(self.width);
        let (val, unk) = self.planes();
        let last = val.len() - 1;
        let mut any_zero = false;
        let mut any_unk = false;
        for i in 0..val.len() {
            let live = if i == last { m } else { u64::MAX };
            // A bit is known-zero when both planes are 0.
            any_zero |= (!val[i] & !unk[i] & live) != 0;
            any_unk |= (unk[i] & live) != 0;
        }
        if any_zero {
            Bit::Zero
        } else if any_unk {
            Bit::X
        } else {
            Bit::One
        }
    }

    /// Reduction OR.
    pub fn reduce_or(&self) -> Bit {
        match self.truthy() {
            Bit::One => Bit::One,
            Bit::Zero => Bit::Zero,
            _ => Bit::X,
        }
    }

    /// Reduction XOR (parity); `x` if any bit unknown.
    pub fn reduce_xor(&self) -> Bit {
        if !self.is_fully_known() {
            return Bit::X;
        }
        let (val, _) = self.planes();
        let parity = val.iter().fold(0u32, |acc, w| acc ^ w.count_ones()) & 1;
        if parity == 1 {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Number of one bits, or `None` if any bit is unknown.
    pub fn count_ones(&self) -> Option<u32> {
        if !self.is_fully_known() {
            return None;
        }
        let (val, _) = self.planes();
        Some(val.iter().map(|w| w.count_ones()).sum())
    }

    // ---- arithmetic (any unknown input -> all-x result) ----

    fn all_x_if_unknown(&self, other: &LogicVec, width: usize) -> Option<LogicVec> {
        if self.is_fully_known() && other.is_fully_known() {
            None
        } else {
            Some(LogicVec::filled_x(width))
        }
    }

    /// Wrapping addition at `max(widths)` bits.
    pub fn add(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        let mut out = self.zero_extend(width);
        if other.width == width {
            out.add_known(other);
        } else {
            out.add_known(&other.zero_extend(width));
        }
        out
    }

    /// In-place wrapping addition with an equal-width operand (all-`x`
    /// result when either input has unknown bits).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn add_assign(&mut self, other: &LogicVec) {
        assert_eq!(self.width, other.width, "add_assign width mismatch");
        if !self.is_fully_known() || !other.is_fully_known() {
            self.set_all_x();
            return;
        }
        self.add_known(other);
    }

    /// Word-level wrapping add; both sides must be fully known and of
    /// `self`'s width.
    fn add_known(&mut self, other: &LogicVec) {
        let (bv, _) = other.planes();
        let (av, _) = self.planes_mut();
        let mut carry = 0u64;
        for i in 0..av.len() {
            let (s1, c1) = av[i].overflowing_add(bv[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            av[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        self.normalize();
    }

    /// Wrapping subtraction at `max(widths)` bits.
    pub fn sub(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        let mut out = self.zero_extend(width);
        if other.width == width {
            out.sub_known(other);
        } else {
            out.sub_known(&other.zero_extend(width));
        }
        out
    }

    /// In-place wrapping subtraction with an equal-width operand.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn sub_assign(&mut self, other: &LogicVec) {
        assert_eq!(self.width, other.width, "sub_assign width mismatch");
        if !self.is_fully_known() || !other.is_fully_known() {
            self.set_all_x();
            return;
        }
        self.sub_known(other);
    }

    fn sub_known(&mut self, other: &LogicVec) {
        let (bv, _) = other.planes();
        let (av, _) = self.planes_mut();
        let mut borrow = 0u64;
        for i in 0..av.len() {
            let (d1, b1) = av[i].overflowing_sub(bv[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            av[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        self.normalize();
    }

    /// Two's-complement negation.
    pub fn neg(&self) -> LogicVec {
        let mut out = self.clone();
        out.neg_assign();
        out
    }

    /// In-place two's-complement negation (all-`x` when any bit unknown).
    pub fn neg_assign(&mut self) {
        if !self.is_fully_known() {
            self.set_all_x();
            return;
        }
        let (val, _) = self.planes_mut();
        let mut carry = 1u64;
        for w in val.iter_mut() {
            let (s, c) = (!*w).overflowing_add(carry);
            *w = s;
            carry = c as u64;
        }
        self.normalize();
    }

    /// Wrapping multiplication at `max(widths)` bits.
    pub fn mul(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        if width <= 64 {
            let (av, _) = self.planes();
            let (bv, _) = other.planes();
            return LogicVec::from_u64(width, av[0].wrapping_mul(bv[0]));
        }
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        let (av, _) = a.planes();
        let (bv, _) = b.planes();
        let n = av.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let cur = acc[i + j] as u128 + (av[i] as u128) * (bv[j] as u128) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = LogicVec::zeros(width);
        out.planes_mut().0.copy_from_slice(&acc);
        out.normalize();
        out
    }

    /// Unsigned division; division by zero yields all-`x` (as in Verilog).
    pub fn div(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        match (self.to_u128(), other.to_u128()) {
            (Some(a), Some(b)) if b != 0 => LogicVec::from_u128(width, a / b),
            (Some(_), Some(_)) => LogicVec::filled_x(width),
            _ => {
                // Wide division: fall back to long division over bits.
                self.wide_divmod(other, width).0
            }
        }
    }

    /// Unsigned remainder; modulo zero yields all-`x`.
    pub fn rem(&self, other: &LogicVec) -> LogicVec {
        let width = self.width.max(other.width);
        if let Some(x) = self.all_x_if_unknown(other, width) {
            return x;
        }
        match (self.to_u128(), other.to_u128()) {
            (Some(a), Some(b)) if b != 0 => LogicVec::from_u128(width, a % b),
            (Some(_), Some(_)) => LogicVec::filled_x(width),
            _ => self.wide_divmod(other, width).1,
        }
    }

    fn wide_divmod(&self, other: &LogicVec, width: usize) -> (LogicVec, LogicVec) {
        if other.truthy() != Bit::One {
            return (LogicVec::filled_x(width), LogicVec::filled_x(width));
        }
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        let mut quot = LogicVec::zeros(width);
        let mut rem = LogicVec::zeros(width);
        for i in (0..width).rev() {
            rem = rem.shl_const(1);
            if a.bit(i) == Bit::One {
                rem.set_bit(0, Bit::One);
            }
            if rem.cmp_unsigned(&b) != std::cmp::Ordering::Less {
                rem = rem.sub(&b);
                quot.set_bit(i, Bit::One);
            }
        }
        (quot, rem)
    }

    fn shl_const(&self, n: usize) -> LogicVec {
        let mut out = LogicVec::zeros(self.width);
        if n < self.width {
            let (sv, su) = self.planes();
            let (dv, du) = out.planes_mut();
            copy_words_range(dv, n, sv, 0, self.width - n);
            copy_words_range(du, n, su, 0, self.width - n);
        }
        out
    }

    fn cmp_unsigned(&self, other: &LogicVec) -> std::cmp::Ordering {
        let width = self.width.max(other.width);
        let last = words_for(width);
        let (av, _) = self.planes();
        let (bv, _) = other.planes();
        for i in (0..last).rev() {
            let a = av.get(i).copied().unwrap_or(0);
            let b = bv.get(i).copied().unwrap_or(0);
            match a.cmp(&b) {
                std::cmp::Ordering::Equal => continue,
                o => return o,
            }
        }
        std::cmp::Ordering::Equal
    }

    fn cmp_signed(&self, other: &LogicVec) -> std::cmp::Ordering {
        let width = self.width.max(other.width).max(1);
        let a = self.sign_extend(width);
        let b = other.sign_extend(width);
        let a_neg = a.bit(width - 1) == Bit::One;
        let b_neg = b.bit(width - 1) == Bit::One;
        match (a_neg, b_neg) {
            (true, false) => std::cmp::Ordering::Less,
            (false, true) => std::cmp::Ordering::Greater,
            _ => a.cmp_unsigned(&b),
        }
    }

    /// Relational comparison producing a 1-bit result; `x` if any input
    /// bit is unknown. `signed` selects two's-complement ordering.
    pub fn lt(&self, other: &LogicVec, signed: bool) -> Bit {
        if !self.is_fully_known() || !other.is_fully_known() {
            return Bit::X;
        }
        let ord = if signed {
            self.cmp_signed(other)
        } else {
            self.cmp_unsigned(other)
        };
        if ord == std::cmp::Ordering::Less {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Logical equality `==`: `x` if any compared bit is unknown.
    pub fn eq_logic(&self, other: &LogicVec) -> Bit {
        if !self.is_fully_known() || !other.is_fully_known() {
            return Bit::X;
        }
        if self.cmp_unsigned(other) == std::cmp::Ordering::Equal {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// Case equality `===`: exact four-state comparison, always known.
    pub fn eq_case(&self, other: &LogicVec) -> Bit {
        if self.width == other.width {
            return if self == other { Bit::One } else { Bit::Zero };
        }
        let width = self.width.max(other.width);
        let a = self.zero_extend(width);
        let b = other.zero_extend(width);
        if a == b {
            Bit::One
        } else {
            Bit::Zero
        }
    }

    /// `casex` match: `x` *and* `z` bits in `pattern` (or in `self`) are
    /// wildcards.
    pub fn casex_match(&self, pattern: &LogicVec) -> bool {
        let width = self.width.max(pattern.width);
        let a = self.zero_extend(width);
        let p = pattern.zero_extend(width);
        for i in 0..width {
            let pb = p.bit(i);
            let ab = a.bit(i);
            if !pb.is_known() || !ab.is_known() {
                continue;
            }
            if pb != ab {
                return false;
            }
        }
        true
    }

    /// Overwrites every bit with zero in place.
    pub fn set_all_zero(&mut self) {
        let (val, unk) = self.planes_mut();
        for w in val.iter_mut() {
            *w = 0;
        }
        for w in unk.iter_mut() {
            *w = 0;
        }
    }

    /// `casez` match: `z` bits in `pattern` (or in `self`) are wildcards.
    pub fn casez_match(&self, pattern: &LogicVec) -> bool {
        let width = self.width.max(pattern.width);
        let a = self.zero_extend(width);
        let p = pattern.zero_extend(width);
        for i in 0..width {
            let pb = p.bit(i);
            let ab = a.bit(i);
            if pb == Bit::Z || ab == Bit::Z {
                continue;
            }
            if pb != ab {
                return false;
            }
        }
        true
    }

    // ---- shifts ----

    /// Logical shift left by a possibly-unknown amount.
    pub fn shl(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            None => LogicVec::filled_x(self.width),
            Some(n) => {
                if n as usize >= self.width {
                    LogicVec::zeros(self.width)
                } else {
                    self.shl_const(n as usize)
                }
            }
        }
    }

    /// Logical shift right.
    pub fn shr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            None => LogicVec::filled_x(self.width),
            Some(n) => {
                let n = n as usize;
                if n >= self.width {
                    LogicVec::zeros(self.width)
                } else {
                    let mut out = LogicVec::zeros(self.width);
                    let (sv, su) = self.planes();
                    let (dv, du) = out.planes_mut();
                    copy_words_range(dv, 0, sv, n, self.width - n);
                    copy_words_range(du, 0, su, n, self.width - n);
                    out
                }
            }
        }
    }

    /// Arithmetic shift right (replicates the MSB).
    pub fn ashr(&self, amount: &LogicVec) -> LogicVec {
        match amount.to_u64() {
            None => LogicVec::filled_x(self.width),
            Some(n) => {
                let msb = self.bit(self.width - 1);
                let n = (n as usize).min(self.width);
                let mut out = LogicVec::zeros(self.width);
                {
                    let (sv, su) = self.planes();
                    let (dv, du) = out.planes_mut();
                    copy_words_range(dv, 0, sv, n, self.width - n);
                    copy_words_range(du, 0, su, n, self.width - n);
                    let (fu, fv) = msb.planes();
                    fill_words_range(dv, self.width - n, n, fv == 1);
                    fill_words_range(du, self.width - n, n, fu == 1);
                }
                out.normalize();
                out
            }
        }
    }

    // ---- formatting ----

    /// Verilog `%b` formatting.
    pub fn to_binary_string(&self) -> String {
        (0..self.width)
            .rev()
            .map(|i| self.bit(i).to_char())
            .collect()
    }

    /// Verilog `%h` formatting: a nibble containing any `x` prints `x`,
    /// any `z` prints `z` (x wins over z when mixed).
    pub fn to_hex_string(&self) -> String {
        let nibbles = self.width.div_ceil(4);
        let mut s = String::with_capacity(nibbles);
        for n in (0..nibbles).rev() {
            let mut v = 0u8;
            let mut has_x = false;
            let mut has_z = false;
            let mut all_z = true;
            for b in 0..4 {
                let i = n * 4 + b;
                if i >= self.width {
                    all_z = false;
                    continue;
                }
                match self.bit(i) {
                    Bit::Zero => all_z = false,
                    Bit::One => {
                        v |= 1 << b;
                        all_z = false;
                    }
                    Bit::X => {
                        has_x = true;
                        all_z = false;
                    }
                    Bit::Z => has_z = true,
                }
            }
            if has_x {
                s.push('x');
            } else if all_z && has_z {
                s.push('z');
            } else if has_z {
                s.push('x');
            } else {
                s.push(char::from_digit(v as u32, 16).expect("nibble in range"));
            }
        }
        s
    }

    /// Verilog `%0d` formatting: decimal, or `x`/`z` when unknown.
    pub fn to_decimal_string(&self) -> String {
        if self.is_fully_known() {
            return self.to_decimal_known();
        }
        if self.is_fully_unknown() {
            // all x -> "x", all z -> "z"
            let all_z = (0..self.width).all(|i| self.bit(i) == Bit::Z);
            if all_z {
                return "z".to_string();
            }
            let all_x = (0..self.width).all(|i| self.bit(i) == Bit::X);
            if all_x {
                return "x".to_string();
            }
        }
        "X".to_string()
    }

    fn to_decimal_known(&self) -> String {
        if let Some(v) = self.to_u128() {
            return v.to_string();
        }
        // Arbitrary width: repeated division by 10^19.
        let mut words: Vec<u64> = self.planes().0.to_vec();
        let mut digits = String::new();
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        loop {
            let mut rem: u64 = 0;
            let mut all_zero = true;
            for w in words.iter_mut().rev() {
                let cur = ((rem as u128) << 64) | (*w as u128);
                *w = (cur / CHUNK as u128) as u64;
                rem = (cur % CHUNK as u128) as u64;
                if *w != 0 {
                    all_zero = false;
                }
            }
            if all_zero {
                digits.insert_str(0, &rem.to_string());
                break;
            } else {
                digits.insert_str(0, &format!("{rem:019}"));
            }
        }
        digits
    }
}

/// AND on one word of each plane: `(known-ones, unknowns)`.
#[inline]
fn and_words(av: u64, au: u64, bv: u64, bu: u64) -> (u64, u64) {
    // treat z as x: a bit is "one" if val&!unk, "zero" if !val&!unk
    let a_zero = !av & !au;
    let b_zero = !bv & !bu;
    let a_one = av & !au;
    let b_one = bv & !bu;
    let zero = a_zero | b_zero;
    let one = a_one & b_one;
    let unk = !(zero | one);
    (one, unk)
}

/// OR on one word of each plane.
#[inline]
fn or_words(av: u64, au: u64, bv: u64, bu: u64) -> (u64, u64) {
    let a_one = av & !au;
    let b_one = bv & !bu;
    let a_zero = !av & !au;
    let b_zero = !bv & !bu;
    let one = a_one | b_one;
    let zero = a_zero & b_zero;
    let unk = !(zero | one);
    (one, unk)
}

/// XOR on one word of each plane.
#[inline]
fn xor_words(av: u64, au: u64, bv: u64, bu: u64) -> (u64, u64) {
    let unk = au | bu;
    let one = (av ^ bv) & !unk;
    (one, unk)
}

impl fmt::Debug for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'b{}", self.width, self.to_binary_string())
    }
}

impl fmt::Display for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_decimal_string())
    }
}

impl fmt::Binary for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_binary_string())
    }
}

impl fmt::LowerHex for LogicVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex_string())
    }
}

impl From<bool> for LogicVec {
    fn from(b: bool) -> Self {
        LogicVec::from_bool(b)
    }
}

impl From<Bit> for LogicVec {
    fn from(b: Bit) -> Self {
        LogicVec::from_bit(b)
    }
}

impl crate::hash::StructuralHash for LogicVec {
    /// Width plus the two normalized plane word arrays — plane equality
    /// is value equality (the normalized invariant), so this is
    /// injective up to `==`.
    fn hash_structure(&self, h: &mut crate::hash::FingerprintHasher) {
        h.write_usize(self.width);
        let (val, unk) = self.planes();
        for w in val {
            h.write_u64(*w);
        }
        for w in unk {
            h.write_u64(*w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut v = LogicVec::zeros(130);
        for (i, b) in [Bit::One, Bit::X, Bit::Z, Bit::Zero]
            .iter()
            .cycle()
            .take(130)
            .enumerate()
        {
            v.set_bit(i, *b);
        }
        for (i, b) in [Bit::One, Bit::X, Bit::Z, Bit::Zero]
            .iter()
            .cycle()
            .take(130)
            .enumerate()
        {
            assert_eq!(v.bit(i), *b, "bit {i}");
        }
    }

    #[test]
    fn from_u64_masks_width() {
        let v = LogicVec::from_u64(4, 0xff);
        assert_eq!(v.to_u64(), Some(0xf));
    }

    #[test]
    fn filled_x_unknown() {
        let v = LogicVec::filled_x(7);
        assert!(!v.is_fully_known());
        assert!(v.is_fully_unknown());
        assert_eq!(v.to_u64(), None);
        assert_eq!(v.to_decimal_string(), "x");
    }

    #[test]
    fn add_wraps() {
        let a = LogicVec::from_u64(4, 0xf);
        let b = LogicVec::from_u64(4, 1);
        assert_eq!(a.add(&b).to_u64(), Some(0));
    }

    #[test]
    fn add_multiword_carry() {
        let a = LogicVec::from_u128(128, u64::MAX as u128);
        let b = LogicVec::from_u64(128, 1);
        assert_eq!(a.add(&b).to_u128(), Some(1u128 << 64));
    }

    #[test]
    fn sub_and_neg() {
        let a = LogicVec::from_u64(8, 5);
        let b = LogicVec::from_u64(8, 7);
        assert_eq!(a.sub(&b).to_u64(), Some(0xfe)); // -2 mod 256
        assert_eq!(b.neg().to_u64(), Some(0xf9));
    }

    #[test]
    fn mul_wide() {
        let a = LogicVec::from_u64(64, u64::MAX);
        let b = LogicVec::from_u64(64, 3);
        assert_eq!(a.mul(&b).to_u64(), Some(u64::MAX.wrapping_mul(3)));
    }

    #[test]
    fn mul_multiword() {
        let a = LogicVec::from_u128(128, u128::MAX / 5);
        let b = LogicVec::from_u64(128, 11);
        assert_eq!(a.mul(&b).to_u128(), Some((u128::MAX / 5).wrapping_mul(11)));
    }

    #[test]
    fn div_rem() {
        let a = LogicVec::from_u64(8, 23);
        let b = LogicVec::from_u64(8, 5);
        assert_eq!(a.div(&b).to_u64(), Some(4));
        assert_eq!(a.rem(&b).to_u64(), Some(3));
        let z = LogicVec::zeros(8);
        assert!(!a.div(&z).is_fully_known());
    }

    #[test]
    fn arithmetic_x_poisons() {
        let a = LogicVec::filled_x(8);
        let b = LogicVec::from_u64(8, 3);
        assert!(a.add(&b).is_fully_unknown());
        assert!(b.sub(&a).is_fully_unknown());
        assert!(a.mul(&b).is_fully_unknown());
    }

    #[test]
    fn bitwise_x_rules() {
        let x = LogicVec::filled_x(1);
        let one = LogicVec::from_u64(1, 1);
        let zero = LogicVec::zeros(1);
        assert_eq!(zero.and(&x).bit(0), Bit::Zero);
        assert_eq!(one.and(&x).bit(0), Bit::X);
        assert_eq!(one.or(&x).bit(0), Bit::One);
        assert_eq!(zero.or(&x).bit(0), Bit::X);
        assert_eq!(one.xor(&x).bit(0), Bit::X);
        assert_eq!(x.not().bit(0), Bit::X);
    }

    #[test]
    fn z_treated_as_x_in_gates() {
        let z = LogicVec::filled_z(1);
        let one = LogicVec::from_u64(1, 1);
        assert_eq!(one.and(&z).bit(0), Bit::X);
        assert_eq!(one.or(&z).bit(0), Bit::One);
    }

    #[test]
    fn reductions() {
        let v = LogicVec::from_u64(4, 0b1011);
        assert_eq!(v.reduce_and(), Bit::Zero);
        assert_eq!(v.reduce_or(), Bit::One);
        assert_eq!(v.reduce_xor(), Bit::One);
        let ones = LogicVec::ones(4);
        assert_eq!(ones.reduce_and(), Bit::One);
        let mut withx = v.clone();
        withx.set_bit(2, Bit::X);
        assert_eq!(withx.reduce_or(), Bit::One); // known one dominates
        assert_eq!(withx.reduce_xor(), Bit::X);
        // Wide reduction across the word boundary.
        let wide_ones = LogicVec::ones(100);
        assert_eq!(wide_ones.reduce_and(), Bit::One);
        let mut wide = LogicVec::ones(100);
        wide.set_bit(90, Bit::Zero);
        assert_eq!(wide.reduce_and(), Bit::Zero);
    }

    #[test]
    fn comparisons() {
        let a = LogicVec::from_u64(8, 0x80);
        let b = LogicVec::from_u64(8, 0x01);
        assert_eq!(a.lt(&b, false), Bit::Zero);
        assert_eq!(a.lt(&b, true), Bit::One); // 0x80 = -128 signed
        assert_eq!(a.eq_logic(&a.clone()), Bit::One);
        assert_eq!(a.eq_logic(&b), Bit::Zero);
        let x = LogicVec::filled_x(8);
        assert_eq!(a.eq_logic(&x), Bit::X);
        assert_eq!(x.eq_case(&LogicVec::filled_x(8)), Bit::One);
    }

    #[test]
    fn casez_wildcards() {
        let v = LogicVec::from_u64(4, 0b1010);
        let mut pat = LogicVec::from_u64(4, 0b1000);
        pat.set_bit(0, Bit::Z);
        pat.set_bit(1, Bit::Z);
        assert!(v.casez_match(&pat));
        let pat2 = LogicVec::from_u64(4, 0b0000);
        assert!(!v.casez_match(&pat2));
    }

    #[test]
    fn shifts() {
        let v = LogicVec::from_u64(8, 0b1001_0110);
        assert_eq!(v.shl(&LogicVec::from_u64(3, 2)).to_u64(), Some(0b0101_1000));
        assert_eq!(v.shr(&LogicVec::from_u64(3, 2)).to_u64(), Some(0b0010_0101));
        assert_eq!(
            v.ashr(&LogicVec::from_u64(3, 2)).to_u64(),
            Some(0b1110_0101)
        );
        assert_eq!(v.shl(&LogicVec::from_u64(8, 200)).to_u64(), Some(0));
        assert_eq!(v.ashr(&LogicVec::from_u64(8, 200)).to_u64(), Some(0xff));
    }

    #[test]
    fn shifts_straddle_word_boundary() {
        let mut v = LogicVec::zeros(96);
        v.set_bit(0, Bit::One);
        v.set_bit(70, Bit::X);
        let left = v.shl(&LogicVec::from_u64(8, 63));
        assert_eq!(left.bit(63), Bit::One);
        assert_eq!(left.bit(0), Bit::Zero);
        // x at 70 shifted to 133, off the top of the 96-bit vector.
        assert_eq!(left.bit(70), Bit::Zero);
        let right = left.shr(&LogicVec::from_u64(8, 63));
        assert_eq!(right.bit(0), Bit::One);
        assert_eq!(right.bit(70), Bit::Zero);
        // A shift that keeps the x in range moves the x plane with it.
        assert_eq!(v.shl(&LogicVec::from_u64(8, 20)).bit(90), Bit::X);
    }

    #[test]
    fn arithmetic_shift_known_case_shift18() {
        // The paper's shift18 demo: 64-bit arithmetic shift right by 8.
        let q = LogicVec::from_u64(64, 0x8000_0000_0000_0000);
        let shifted = q.ashr(&LogicVec::from_u64(8, 8));
        assert_eq!(shifted.to_u64(), Some(0xff80_0000_0000_0000));
    }

    #[test]
    fn concat_repeat_slice() {
        let a = LogicVec::from_u64(4, 0xa);
        let b = LogicVec::from_u64(4, 0x5);
        let c = a.concat(&b);
        assert_eq!(c.width(), 8);
        assert_eq!(c.to_u64(), Some(0xa5));
        let r = b.repeat(3);
        assert_eq!(r.width(), 12);
        assert_eq!(r.to_u64(), Some(0x555));
        assert_eq!(c.slice(4, 4).to_u64(), Some(0xa));
        // out-of-range part select reads x
        assert_eq!(c.slice(6, 4).bit(3), Bit::X);
    }

    #[test]
    fn concat_across_word_boundary() {
        let hi = LogicVec::from_u64(40, 0xde_adbe_ad11);
        let lo = LogicVec::from_u64(40, 0xbe_efca_fe22);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 80);
        assert_eq!(
            c.to_u128(),
            Some(((0xde_adbe_ad11u128) << 40) | 0xbe_efca_fe22)
        );
        assert_eq!(c.slice(40, 40).to_u64(), Some(0xde_adbe_ad11));
        assert_eq!(c.slice(0, 40).to_u64(), Some(0xbe_efca_fe22));
    }

    #[test]
    fn extends() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.zero_extend(8).to_u64(), Some(0b0000_1010));
        assert_eq!(v.sign_extend(8).to_u64(), Some(0b1111_1010));
        assert_eq!(v.sign_extend(2).to_u64(), Some(0b10));
        let mut x = v.clone();
        x.set_bit(3, Bit::X);
        assert_eq!(x.sign_extend(6).bit(5), Bit::X);
    }

    #[test]
    fn extend_across_word_boundary() {
        let v = LogicVec::from_u64(64, 0x8000_0000_0000_0001);
        let s = v.sign_extend(100);
        assert_eq!(s.bit(99), Bit::One);
        assert_eq!(s.bit(64), Bit::One);
        assert_eq!(s.bit(0), Bit::One);
        assert_eq!(s.bit(1), Bit::Zero);
        let z = v.zero_extend(100);
        assert_eq!(z.bit(99), Bit::Zero);
        assert_eq!(z.bit(63), Bit::One);
        // Truncating back round-trips.
        assert_eq!(s.zero_extend(64), v);
    }

    #[test]
    fn to_i64_signed() {
        let v = LogicVec::from_u64(4, 0b1010);
        assert_eq!(v.to_i64(), Some(-6));
        let w = LogicVec::from_u64(4, 0b0101);
        assert_eq!(w.to_i64(), Some(5));
    }

    #[test]
    fn truthiness() {
        assert_eq!(LogicVec::zeros(8).truthy(), Bit::Zero);
        assert_eq!(LogicVec::from_u64(8, 2).truthy(), Bit::One);
        assert_eq!(LogicVec::filled_x(8).truthy(), Bit::X);
        let mut v = LogicVec::filled_x(8);
        v.set_bit(3, Bit::One);
        assert_eq!(v.truthy(), Bit::One);
    }

    #[test]
    fn formatting() {
        let v = LogicVec::from_u64(8, 0xa5);
        assert_eq!(v.to_binary_string(), "10100101");
        assert_eq!(v.to_hex_string(), "a5");
        assert_eq!(v.to_decimal_string(), "165");
        let mut w = v.clone();
        w.set_bit(0, Bit::X);
        assert_eq!(w.to_hex_string(), "ax");
        assert_eq!(w.to_decimal_string(), "X");
        assert_eq!(format!("{:b}", v), "10100101");
        assert_eq!(format!("{:x}", v), "a5");
    }

    #[test]
    fn decimal_wide() {
        let v = LogicVec::from_u128(128, u128::MAX);
        assert_eq!(v.to_decimal_string(), u128::MAX.to_string());
        let big = LogicVec::ones(192);
        // 2^192 - 1
        assert_eq!(
            big.to_decimal_string(),
            "6277101735386680763835789423207666416102355444464034512895"
        );
    }

    #[test]
    fn from_bits_msb_first_order() {
        let v = LogicVec::from_bits_msb_first(&[Bit::One, Bit::Zero, Bit::X, Bit::One]);
        assert_eq!(v.width(), 4);
        assert_eq!(v.bit(3), Bit::One);
        assert_eq!(v.bit(2), Bit::Zero);
        assert_eq!(v.bit(1), Bit::X);
        assert_eq!(v.bit(0), Bit::One);
    }

    // ---- representation invariant ----

    #[test]
    fn small_widths_stay_inline_through_ops() {
        let a = LogicVec::from_u64(64, 0xdead_beef_dead_beef);
        let b = LogicVec::from_u64(64, 0x1234_5678_9abc_def0);
        assert!(a.is_inline());
        assert!(a.add(&b).is_inline());
        assert!(a.and(&b).is_inline());
        assert!(a.not().is_inline());
        assert!(a.slice(8, 32).is_inline());
        assert!(a.mul(&b).is_inline());
        assert!(a.shl(&LogicVec::from_u64(8, 9)).is_inline());
        assert!(LogicVec::filled_x(64).is_inline());
        assert!(a.zero_extend(32).is_inline());
        assert!(!a.zero_extend(65).is_inline());
        assert!(a.concat(&b).width() == 128 && !a.concat(&b).is_inline());
    }

    // ---- in-place ops agree with their value-returning counterparts ----

    fn sample_vectors(width: usize) -> Vec<LogicVec> {
        let mut out = vec![
            LogicVec::zeros(width),
            LogicVec::ones(width),
            LogicVec::filled_x(width),
            LogicVec::filled_z(width),
        ];
        let mut v = LogicVec::zeros(width);
        for i in 0..width {
            v.set_bit(
                i,
                match i % 4 {
                    0 => Bit::One,
                    1 => Bit::Zero,
                    2 => Bit::X,
                    _ => Bit::Z,
                },
            );
        }
        out.push(v);
        let mut k = LogicVec::zeros(width);
        for i in (0..width).step_by(3) {
            k.set_bit(i, Bit::One);
        }
        out.push(k);
        out
    }

    #[test]
    fn assign_ops_match_value_ops() {
        for width in [1, 7, 63, 64, 65, 100, 128, 130] {
            for a in sample_vectors(width) {
                for b in sample_vectors(width) {
                    let mut m = a.clone();
                    m.and_assign(&b);
                    assert_eq!(m, a.and(&b), "and w={width}");
                    let mut m = a.clone();
                    m.or_assign(&b);
                    assert_eq!(m, a.or(&b), "or w={width}");
                    let mut m = a.clone();
                    m.xor_assign(&b);
                    assert_eq!(m, a.xor(&b), "xor w={width}");
                    let mut m = a.clone();
                    m.xnor_assign(&b);
                    assert_eq!(m, a.xnor(&b), "xnor w={width}");
                    let mut m = a.clone();
                    m.add_assign(&b);
                    assert_eq!(m, a.add(&b), "add w={width}");
                    let mut m = a.clone();
                    m.sub_assign(&b);
                    assert_eq!(m, a.sub(&b), "sub w={width}");
                }
                let mut m = a.clone();
                m.not_assign();
                assert_eq!(m, a.not(), "not w={width}");
                let mut m = a.clone();
                m.neg_assign();
                assert_eq!(m, a.neg(), "neg w={width}");
            }
        }
    }

    #[test]
    fn assign_resize_matches_resize() {
        for src_w in [1, 5, 63, 64, 65, 90, 128] {
            for dst_w in [1, 5, 63, 64, 65, 90, 128] {
                for signed in [false, true] {
                    for v in sample_vectors(src_w) {
                        let mut dst = LogicVec::zeros(dst_w);
                        dst.assign_resize(&v, signed);
                        assert_eq!(
                            dst,
                            v.resize(dst_w, signed),
                            "resize {src_w}->{dst_w} signed={signed}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn assign_slice_ext_matches_slice_zero_extend() {
        for src_w in [4, 64, 65, 100] {
            for v in sample_vectors(src_w) {
                for lo in [0usize, 3, 63, 64, 99, 120] {
                    for w in [1usize, 4, 64, 80] {
                        for ctx in [1usize, 4, 64, 80, 96] {
                            let mut dst = LogicVec::ones(ctx);
                            dst.assign_slice_ext(&v, lo, w);
                            assert_eq!(
                                dst,
                                v.slice(lo, w).zero_extend(ctx),
                                "slice src_w={src_w} lo={lo} w={w} ctx={ctx}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn write_range_detects_change() {
        let mut v = LogicVec::from_u64(8, 0x00);
        let bits = LogicVec::from_u64(4, 0xf);
        assert!(v.write_range(2, &bits, 4));
        assert_eq!(v.to_u64(), Some(0b0011_1100));
        // Re-writing the same bits is not a change.
        assert!(!v.write_range(2, &bits, 4));
        // Out-of-range low bit writes nothing.
        assert!(!v.write_range(8, &bits, 4));
        // Clipped at the top.
        let mut w = LogicVec::zeros(8);
        assert!(w.write_range(6, &LogicVec::ones(4), 4));
        assert_eq!(w.to_u64(), Some(0b1100_0000));
        // Wide, straddling the word boundary, with x planes.
        let mut wide = LogicVec::zeros(100);
        let patch = LogicVec::filled_x(10);
        assert!(wide.write_range(60, &patch, 10));
        assert_eq!(wide.bit(59), Bit::Zero);
        assert_eq!(wide.bit(60), Bit::X);
        assert_eq!(wide.bit(69), Bit::X);
        assert_eq!(wide.bit(70), Bit::Zero);
        assert!(!wide.write_range(60, &patch, 10));
    }

    #[test]
    fn copy_from_both_representations() {
        let a = LogicVec::from_u64(33, 0x1_2345_6789);
        let mut b = LogicVec::zeros(33);
        b.copy_from(&a);
        assert_eq!(a, b);
        let wa = LogicVec::from_u128(100, 0x1234_5678_9abc_def0_1122);
        let mut wb = LogicVec::filled_x(100);
        wb.copy_from(&wa);
        assert_eq!(wa, wb);
    }
}
