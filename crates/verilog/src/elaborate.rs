//! Elaboration: AST → flattened [`Design`].
//!
//! Elaboration resolves names to signal ids, folds parameters into
//! constants, flattens the instance hierarchy with dotted name prefixes,
//! binds instance ports with continuous assignments, annotates expressions
//! with Verilog sizing information, and compiles procedural bodies to the
//! bytecode executed by the simulator.

use crate::ast::*;
use crate::design::*;
use crate::error::ElabError;
use crate::logic::LogicVec;
use std::collections::HashMap;

/// Elaborates `top` (and everything it instantiates) from `file`.
///
/// # Errors
///
/// Returns [`ElabError`] for unresolved names, assignments to the wrong net
/// kind (`assign` to a `reg`, procedural writes to a `wire`), missing
/// modules, recursive instantiation deeper than 16 levels, bad port
/// bindings, and `always` blocks that could never suspend.
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Design, ElabError> {
    let _span = correctbench_obs::span(correctbench_obs::Phase::Elab);
    let mut seen = HashMap::new();
    for m in &file.modules {
        if seen.insert(m.name.clone(), ()).is_some() {
            return Err(ElabError::new(format!("duplicate module `{}`", m.name)));
        }
    }
    let module = file
        .module(top)
        .ok_or_else(|| ElabError::new(format!("top module `{top}` not found")))?;
    let mut design = Design::default();
    let mut el = Elaborator {
        file,
        design: &mut design,
        temp_counter: 0,
    };
    el.instantiate(module, "", 0)?;
    Ok(design)
}

#[derive(Clone)]
enum Binding {
    Sig(SignalId),
    Const(LogicVec, bool),
}

struct Scope {
    names: HashMap<String, Binding>,
}

impl Scope {
    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.names.get(name)
    }

    fn sig(&self, name: &str) -> Result<SignalId, ElabError> {
        match self.lookup(name) {
            Some(Binding::Sig(s)) => Ok(*s),
            Some(Binding::Const(_, _)) => Err(ElabError::new(format!(
                "`{name}` is a parameter, not a signal"
            ))),
            None => Err(ElabError::new(format!("undeclared identifier `{name}`"))),
        }
    }
}

/// Upper bound on any signal or expression width the elaborator accepts.
/// Malformed or adversarial generated RTL can declare ranges like
/// `[2000000000:0]` or nest replications whose width product overflows;
/// rejecting them here turns would-be giant allocations (or debug-build
/// arithmetic panics) into ordinary [`ElabError`]s.
const MAX_WIDTH: usize = 1 << 20;

/// Validates a computed width against [`MAX_WIDTH`].
fn checked_width(width: usize, what: &str) -> Result<usize, ElabError> {
    if width > MAX_WIDTH {
        Err(ElabError::new(format!(
            "{what} width {width} exceeds the supported maximum {MAX_WIDTH}"
        )))
    } else {
        Ok(width)
    }
}

struct Elaborator<'a> {
    file: &'a SourceFile,
    design: &'a mut Design,
    temp_counter: usize,
}

impl<'a> Elaborator<'a> {
    #[allow(clippy::too_many_arguments)]
    fn add_signal(
        &mut self,
        scope: &mut Scope,
        prefix: &str,
        name: &str,
        width: usize,
        signed: bool,
        lsb: i64,
        kind: SignalKind,
    ) -> Result<SignalId, ElabError> {
        if scope.names.contains_key(name) {
            return Err(ElabError::new(format!("duplicate declaration of `{name}`")));
        }
        checked_width(width, "signal")?;
        let id = SignalId(self.design.signals.len() as u32);
        self.design.signals.push(SignalDef {
            name: format!("{prefix}{name}"),
            width,
            signed,
            lsb,
            kind,
        });
        scope.names.insert(name.to_string(), Binding::Sig(id));
        Ok(id)
    }

    fn fresh_temp(&mut self, prefix: &str, width: usize) -> SignalId {
        let id = SignalId(self.design.signals.len() as u32);
        self.temp_counter += 1;
        self.design.signals.push(SignalDef {
            name: format!("{prefix}$tmp{}", self.temp_counter),
            width,
            signed: false,
            lsb: 0,
            kind: SignalKind::Reg,
        });
        id
    }

    /// Elaborates one module instance. `prefix` is the hierarchical path
    /// including a trailing dot (empty for the top).
    fn instantiate(
        &mut self,
        module: &Module,
        prefix: &str,
        depth: usize,
    ) -> Result<Scope, ElabError> {
        if depth > 16 {
            return Err(ElabError::new(format!(
                "instantiation of `{}` exceeds depth 16 (recursive hierarchy?)",
                module.name
            )));
        }
        let mut scope = Scope {
            names: HashMap::new(),
        };

        // Header-declared ports.
        for p in &module.ports {
            let kind = match p.net {
                NetKind::Reg | NetKind::Integer => SignalKind::Reg,
                NetKind::Wire => SignalKind::Wire,
            };
            if p.dir == Direction::Input && kind == SignalKind::Reg {
                return Err(ElabError::new(format!(
                    "input port `{}` cannot be a reg",
                    p.name
                )));
            }
            self.add_signal(
                &mut scope,
                prefix,
                &p.name,
                p.width(),
                p.signed,
                p.range.map_or(0, |r| r.lsb),
                kind,
            )?;
        }
        for name in &module.port_order {
            // Non-ANSI headers list names whose declarations arrive in the
            // body; ANSI ones are already bound. Check at the end instead.
            let _ = name;
        }

        // Two passes over items: declarations & parameters first, then
        // everything that references them. (Verilog requires declaration
        // before use in our subset; a single pass with params interleaved
        // would also work, but two passes accept more generated code.)
        let mut initial_inits: Vec<(RLValue, RExpr)> = Vec::new();
        for item in &module.items {
            match item {
                Item::Net(decl) => {
                    let width = checked_width(decl.range.map_or(1, |r| r.width()), "signal")?;
                    let lsb = decl.range.map_or(0, |r| r.lsb);
                    let kind = match decl.kind {
                        NetKind::Wire => SignalKind::Wire,
                        NetKind::Reg | NetKind::Integer => SignalKind::Reg,
                    };
                    for (name, init) in &decl.names {
                        // A body declaration may complete a non-ANSI port.
                        if let Some(Binding::Sig(id)) = scope.lookup(name).cloned() {
                            let def = &mut self.design.signals[id.0 as usize];
                            let port_decl = module.ports.iter().find(|p| &p.name == name);
                            if port_decl.is_some() {
                                if def.width != width && def.width != 1 {
                                    return Err(ElabError::new(format!(
                                        "port `{name}` redeclared with a different range"
                                    )));
                                }
                                def.width = width;
                                def.lsb = lsb;
                                def.signed = def.signed || decl.signed;
                                if kind == SignalKind::Reg {
                                    def.kind = SignalKind::Reg;
                                }
                                continue;
                            }
                            return Err(ElabError::new(format!(
                                "duplicate declaration of `{name}`"
                            )));
                        }
                        let id = self.add_signal(
                            &mut scope,
                            prefix,
                            name,
                            width,
                            decl.signed,
                            lsb,
                            kind,
                        )?;
                        if let Some(e) = init {
                            let rhs = self.resolve_expr(&scope, e)?;
                            initial_inits.push((RLValue::Sig(id), rhs));
                        }
                    }
                }
                Item::Param(p) => {
                    let rexpr = self.resolve_expr(&scope, &p.value)?;
                    let value = const_eval(&rexpr).ok_or_else(|| {
                        ElabError::new(format!("parameter `{}` is not constant", p.name))
                    })?;
                    if scope.names.contains_key(&p.name) {
                        return Err(ElabError::new(format!(
                            "duplicate declaration of `{}`",
                            p.name
                        )));
                    }
                    scope
                        .names
                        .insert(p.name.clone(), Binding::Const(value, rexpr.signed));
                }
                _ => {}
            }
        }

        // Every header port name must be bound by now.
        for name in &module.port_order {
            if scope.lookup(name).is_none() {
                return Err(ElabError::new(format!(
                    "port `{name}` of `{}` is never declared",
                    module.name
                )));
            }
        }

        if !initial_inits.is_empty() {
            let mut code = Vec::new();
            for (lhs, rhs) in initial_inits {
                code.push(Instr::Assign(lhs, rhs));
            }
            code.push(Instr::Halt);
            self.design.processes.push(ProcessDef {
                kind: ProcessKind::Initial,
                code,
                name: format!("{prefix}$decl_init"),
            });
        }

        // Second pass: behaviour.
        for item in &module.items {
            match item {
                Item::Net(_) | Item::Param(_) => {}
                Item::Assign(a) => {
                    let lhs = self.resolve_lvalue(&scope, &a.lhs, SignalKind::Wire)?;
                    let rhs = self.resolve_expr(&scope, &a.rhs)?;
                    let mut reads = Vec::new();
                    rhs.collect_sigs(&mut reads);
                    collect_lvalue_index_reads(&lhs, &mut reads);
                    reads.sort();
                    reads.dedup();
                    self.design.assigns.push(RAssign { lhs, rhs, reads });
                }
                Item::Always(blk) => {
                    let idx = self.design.processes.len();
                    let mut comp = BodyCompiler {
                        el: self,
                        scope: &scope,
                        prefix,
                        code: Vec::new(),
                        write_kind: SignalKind::Reg,
                    };
                    match &blk.event {
                        Some(EventControl::List(list)) => {
                            let edges = resolve_event_list(&scope, list)?;
                            comp.code.push(Instr::WaitEvent(edges));
                            comp.stmt(&blk.body)?;
                            let top = 0;
                            comp.code.push(Instr::Jump(top));
                        }
                        Some(EventControl::Star) => {
                            let mut reads = Vec::new();
                            blk.body.collect_reads(&mut reads);
                            let mut edges = Vec::new();
                            for name in reads {
                                if let Some(Binding::Sig(s)) = scope.lookup(&name) {
                                    edges.push((Edge::Any, *s));
                                }
                            }
                            edges.sort_by_key(|(_, s)| *s);
                            edges.dedup_by_key(|(_, s)| *s);
                            // Run the body once at time zero, then wait.
                            comp.stmt(&blk.body)?;
                            let wait_pc = comp.code.len();
                            comp.code.push(Instr::WaitEvent(edges));
                            comp.stmt(&blk.body)?;
                            comp.code.push(Instr::Jump(wait_pc));
                        }
                        None => {
                            comp.stmt(&blk.body)?;
                            if !comp
                                .code
                                .iter()
                                .any(|i| matches!(i, Instr::Delay(_) | Instr::WaitEvent(_)))
                            {
                                return Err(ElabError::new(
                                    "always block has no event control or delay",
                                ));
                            }
                            comp.code.push(Instr::Jump(0));
                        }
                    }
                    let code = comp.code;
                    self.design.processes.push(ProcessDef {
                        kind: ProcessKind::Always,
                        code,
                        name: format!("{prefix}always#{idx}"),
                    });
                }
                Item::Initial(body) => {
                    let idx = self.design.processes.len();
                    let mut comp = BodyCompiler {
                        el: self,
                        scope: &scope,
                        prefix,
                        code: Vec::new(),
                        write_kind: SignalKind::Reg,
                    };
                    comp.stmt(body)?;
                    comp.code.push(Instr::Halt);
                    let code = comp.code;
                    self.design.processes.push(ProcessDef {
                        kind: ProcessKind::Initial,
                        code,
                        name: format!("{prefix}initial#{idx}"),
                    });
                }
                Item::Instance(inst) => {
                    self.bind_instance(&scope, prefix, inst, depth)?;
                }
            }
        }

        Ok(scope)
    }

    fn bind_instance(
        &mut self,
        outer: &Scope,
        prefix: &str,
        inst: &Instance,
        depth: usize,
    ) -> Result<(), ElabError> {
        let module = self
            .file
            .module(&inst.module)
            .ok_or_else(|| ElabError::new(format!("unknown module `{}`", inst.module)))?
            .clone();
        let inner_prefix = format!("{prefix}{}.", inst.name);
        let inner_scope = self.instantiate(&module, &inner_prefix, depth + 1)?;

        // Pair up connections with ports.
        let pairs: Vec<(String, Option<&Expr>)> = match &inst.conns {
            Connections::Ordered(exprs) => {
                if exprs.len() > module.port_order.len() {
                    return Err(ElabError::new(format!(
                        "instance `{}` has {} connections but `{}` has {} ports",
                        inst.name,
                        exprs.len(),
                        module.name,
                        module.port_order.len()
                    )));
                }
                module
                    .port_order
                    .iter()
                    .zip(exprs.iter().map(Some).chain(std::iter::repeat(None)))
                    .map(|(p, e)| (p.clone(), e))
                    .collect()
            }
            Connections::Named(named) => {
                let mut pairs = Vec::new();
                for (port, expr) in named {
                    if !module.port_order.iter().any(|p| p == port) {
                        return Err(ElabError::new(format!(
                            "`{}` has no port named `{port}`",
                            module.name
                        )));
                    }
                    pairs.push((port.clone(), expr.as_ref()));
                }
                pairs
            }
        };

        for (port_name, conn) in pairs {
            let Some(conn) = conn else { continue };
            let port_decl = module
                .ports
                .iter()
                .find(|p| p.name == port_name)
                .ok_or_else(|| {
                    ElabError::new(format!(
                        "port `{port_name}` of `{}` has no declaration",
                        module.name
                    ))
                })?;
            let inner_sig = inner_scope.sig(&port_name)?;
            match port_decl.dir {
                Direction::Input => {
                    let rhs = self.resolve_expr(outer, conn)?;
                    let mut reads = Vec::new();
                    rhs.collect_sigs(&mut reads);
                    reads.sort();
                    reads.dedup();
                    self.design.assigns.push(RAssign {
                        lhs: RLValue::Sig(inner_sig),
                        rhs,
                        reads,
                    });
                }
                Direction::Output => {
                    let lhs = self.expr_as_lvalue(outer, conn).ok_or_else(|| {
                        ElabError::new(format!(
                            "output port `{port_name}` must connect to a signal"
                        ))
                    })?;
                    let def = self.design.signal(inner_sig);
                    let rhs = RExpr {
                        width: def.width,
                        signed: def.signed,
                        kind: RExprKind::Sig(inner_sig),
                    };
                    self.design.assigns.push(RAssign {
                        lhs,
                        rhs,
                        reads: vec![inner_sig],
                    });
                }
            }
        }
        Ok(())
    }

    fn expr_as_lvalue(&mut self, scope: &Scope, e: &Expr) -> Option<RLValue> {
        match e {
            Expr::Ident(n) => scope.sig(n).ok().map(RLValue::Sig),
            Expr::Bit(n, idx) => {
                let s = scope.sig(n).ok()?;
                let idx = self.resolve_expr(scope, idx).ok()?;
                let idx = self.rebase_index(s, idx);
                Some(RLValue::Bit(s, Box::new(idx)))
            }
            Expr::Part(n, msb, lsb) => {
                let s = scope.sig(n).ok()?;
                let def = self.design.signal(s);
                let lo = lsb - def.lsb;
                if lo < 0 || msb < lsb {
                    return None;
                }
                Some(RLValue::Part(s, lo as usize, (msb - lsb) as usize + 1))
            }
            Expr::Concat(parts) => {
                let mut out = Vec::new();
                for p in parts {
                    out.push(self.expr_as_lvalue(scope, p)?);
                }
                Some(RLValue::Concat(out))
            }
            _ => None,
        }
    }

    fn rebase_index(&self, sig: SignalId, idx: RExpr) -> RExpr {
        let lsb = self.design.signal(sig).lsb;
        if lsb == 0 {
            return idx;
        }
        let w = idx.width.max(32);
        RExpr {
            width: w,
            signed: true,
            kind: RExprKind::Binary(
                BinaryOp::Sub,
                Box::new(idx),
                Box::new(RExpr::lit(LogicVec::from_u64(32, lsb as u64), false)),
            ),
        }
    }

    fn resolve_expr(&mut self, scope: &Scope, e: &Expr) -> Result<RExpr, ElabError> {
        Ok(match e {
            Expr::Literal { value, signed } => RExpr::lit(value.clone(), *signed),
            Expr::Ident(n) => match scope.lookup(n) {
                Some(Binding::Sig(s)) => {
                    let def = self.design.signal(*s);
                    RExpr {
                        width: def.width,
                        signed: def.signed,
                        kind: RExprKind::Sig(*s),
                    }
                }
                Some(Binding::Const(v, signed)) => RExpr::lit(v.clone(), *signed),
                None => return Err(ElabError::new(format!("undeclared identifier `{n}`"))),
            },
            Expr::Unary(op, a) => {
                let a = self.resolve_expr(scope, a)?;
                let (width, signed) = match op {
                    UnaryOp::Plus | UnaryOp::Neg | UnaryOp::Not => (a.width, a.signed),
                    _ => (1, false),
                };
                RExpr {
                    width,
                    signed,
                    kind: RExprKind::Unary(*op, Box::new(a)),
                }
            }
            Expr::Binary(op, a, b) => {
                let a = self.resolve_expr(scope, a)?;
                let b = self.resolve_expr(scope, b)?;
                let (width, signed) = if op.is_comparison() {
                    (1, false)
                } else if op.is_shift() || *op == BinaryOp::Pow {
                    (a.width, a.signed)
                } else {
                    (a.width.max(b.width), a.signed && b.signed)
                };
                RExpr {
                    width,
                    signed,
                    kind: RExprKind::Binary(*op, Box::new(a), Box::new(b)),
                }
            }
            Expr::Ternary(c, t, f) => {
                let c = self.resolve_expr(scope, c)?;
                let t = self.resolve_expr(scope, t)?;
                let f = self.resolve_expr(scope, f)?;
                let width = t.width.max(f.width);
                let signed = t.signed && f.signed;
                RExpr {
                    width,
                    signed,
                    kind: RExprKind::Ternary(Box::new(c), Box::new(t), Box::new(f)),
                }
            }
            Expr::Concat(parts) => {
                let parts = parts
                    .iter()
                    .map(|p| self.resolve_expr(scope, p))
                    .collect::<Result<Vec<_>, _>>()?;
                let width = parts
                    .iter()
                    .try_fold(0usize, |acc, p| acc.checked_add(p.width))
                    .ok_or_else(|| ElabError::new("concatenation width overflow"))?;
                RExpr {
                    width: checked_width(width, "concatenation")?,
                    signed: false,
                    kind: RExprKind::Concat(parts),
                }
            }
            Expr::Repl(n, inner) => {
                let inner = self.resolve_expr(scope, inner)?;
                let width = n
                    .checked_mul(inner.width)
                    .ok_or_else(|| ElabError::new("replication width overflow"))?;
                RExpr {
                    width: checked_width(width, "replication")?,
                    signed: false,
                    kind: RExprKind::Repl(*n, Box::new(inner)),
                }
            }
            Expr::Bit(n, idx) => {
                let s = scope.sig(n)?;
                let idx = self.resolve_expr(scope, idx)?;
                let idx = self.rebase_index(s, idx);
                RExpr {
                    width: 1,
                    signed: false,
                    kind: RExprKind::Bit(s, Box::new(idx)),
                }
            }
            Expr::Part(n, msb, lsb) => {
                let s = scope.sig(n)?;
                let def = self.design.signal(s);
                if msb < lsb {
                    return Err(ElabError::new(format!(
                        "ascending part select on `{n}` is not supported"
                    )));
                }
                let lo = lsb - def.lsb;
                if lo < 0 {
                    return Err(ElabError::new(format!(
                        "part select [{msb}:{lsb}] below `{n}`'s range"
                    )));
                }
                RExpr {
                    width: (msb - lsb) as usize + 1,
                    signed: false,
                    kind: RExprKind::Part(s, lo as usize, (msb - lsb) as usize + 1),
                }
            }
            Expr::IndexedPart(n, base, w) => {
                let s = scope.sig(n)?;
                let base = self.resolve_expr(scope, base)?;
                let base = self.rebase_index(s, base);
                RExpr {
                    width: *w,
                    signed: false,
                    kind: RExprKind::IndexedPart(s, Box::new(base), *w),
                }
            }
            Expr::SysFunc(name, args) => match name.as_str() {
                "$signed" | "$unsigned" => {
                    if args.len() != 1 {
                        return Err(ElabError::new(format!("{name} takes one argument")));
                    }
                    let mut inner = self.resolve_expr(scope, &args[0])?;
                    inner.signed = name == "$signed";
                    inner
                }
                "$time" | "$stime" => RExpr {
                    width: 64,
                    signed: false,
                    kind: RExprKind::Time,
                },
                "$clog2" => {
                    if args.len() != 1 {
                        return Err(ElabError::new("$clog2 takes one argument"));
                    }
                    let inner = self.resolve_expr(scope, &args[0])?;
                    let v = const_eval(&inner)
                        .ok_or_else(|| ElabError::new("$clog2 argument must be constant"))?;
                    let n = v
                        .to_u128()
                        .ok_or_else(|| ElabError::new("$clog2 argument must be known"))?;
                    let clog2 = (128 - n.saturating_sub(1).leading_zeros()) as u64;
                    RExpr::lit(LogicVec::from_u64(32, clog2), false)
                }
                _ => {
                    return Err(ElabError::new(format!(
                        "unsupported system function `{name}`"
                    )))
                }
            },
        })
    }

    fn resolve_lvalue(
        &mut self,
        scope: &Scope,
        lv: &LValue,
        expect: SignalKind,
    ) -> Result<RLValue, ElabError> {
        let check = |el: &Elaborator, s: SignalId, name: &str| -> Result<(), ElabError> {
            let def = el.design.signal(s);
            if def.kind != expect {
                let (have, want) = match expect {
                    SignalKind::Wire => ("reg", "continuous assignment targets a wire"),
                    SignalKind::Reg => ("wire", "procedural assignment targets a reg"),
                };
                return Err(ElabError::new(format!(
                    "`{name}` is a {have}, but a {want}"
                )));
            }
            Ok(())
        };
        Ok(match lv {
            LValue::Ident(n) => {
                let s = scope.sig(n)?;
                check(self, s, n)?;
                RLValue::Sig(s)
            }
            LValue::Bit(n, idx) => {
                let s = scope.sig(n)?;
                check(self, s, n)?;
                let idx = self.resolve_expr(scope, idx)?;
                let idx = self.rebase_index(s, idx);
                RLValue::Bit(s, Box::new(idx))
            }
            LValue::Part(n, msb, lsb) => {
                let s = scope.sig(n)?;
                check(self, s, n)?;
                let def = self.design.signal(s);
                let lo = lsb - def.lsb;
                if lo < 0 || msb < lsb {
                    return Err(ElabError::new(format!("bad part select on `{n}`")));
                }
                RLValue::Part(s, lo as usize, (msb - lsb) as usize + 1)
            }
            LValue::IndexedPart(n, base, w) => {
                let s = scope.sig(n)?;
                check(self, s, n)?;
                let base = self.resolve_expr(scope, base)?;
                let base = self.rebase_index(s, base);
                RLValue::IndexedPart(s, Box::new(base), *w)
            }
            LValue::Concat(parts) => {
                let parts = parts
                    .iter()
                    .map(|p| self.resolve_lvalue(scope, p, expect))
                    .collect::<Result<Vec<_>, _>>()?;
                RLValue::Concat(parts)
            }
        })
    }
}

fn resolve_event_list(
    scope: &Scope,
    list: &[EventExpr],
) -> Result<Vec<(Edge, SignalId)>, ElabError> {
    list.iter()
        .map(|e| Ok((e.edge, scope.sig(&e.signal)?)))
        .collect()
}

fn collect_lvalue_index_reads(lv: &RLValue, out: &mut Vec<SignalId>) {
    match lv {
        RLValue::Sig(_) | RLValue::Part(_, _, _) => {}
        RLValue::Bit(_, idx) | RLValue::IndexedPart(_, idx, _) => idx.collect_sigs(out),
        RLValue::Concat(parts) => {
            for p in parts {
                collect_lvalue_index_reads(p, out);
            }
        }
    }
}

/// Evaluates an expression containing no signal reads.
pub fn const_eval(e: &RExpr) -> Option<LogicVec> {
    struct NoSigs;
    impl SigRead for NoSigs {
        fn read(&self, _id: SignalId) -> &LogicVec {
            panic!("signal read in constant expression")
        }
        fn now(&self) -> u64 {
            0
        }
    }
    let mut sigs = Vec::new();
    e.collect_sigs(&mut sigs);
    if !sigs.is_empty() {
        return None;
    }
    Some(eval(e, e.width, &NoSigs))
}

/// Statement-to-bytecode compiler for one process body.
struct BodyCompiler<'a, 'b> {
    el: &'a mut Elaborator<'b>,
    scope: &'a Scope,
    prefix: &'a str,
    code: Vec<Instr>,
    write_kind: SignalKind,
}

impl BodyCompiler<'_, '_> {
    fn stmt(&mut self, s: &Stmt) -> Result<(), ElabError> {
        match s {
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::Blocking(lv, e) => {
                let lhs = self.el.resolve_lvalue(self.scope, lv, self.write_kind)?;
                let rhs = self.el.resolve_expr(self.scope, e)?;
                self.code.push(Instr::Assign(lhs, rhs));
                Ok(())
            }
            Stmt::NonBlocking(lv, e) => {
                let lhs = self.el.resolve_lvalue(self.scope, lv, self.write_kind)?;
                let rhs = self.el.resolve_expr(self.scope, e)?;
                self.code.push(Instr::NbAssign(lhs, rhs));
                Ok(())
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
            } => {
                let cond = self.el.resolve_expr(self.scope, cond)?;
                let branch_pc = self.code.len();
                self.code.push(Instr::JumpIfFalse(cond, usize::MAX));
                self.stmt(then_stmt)?;
                match else_stmt {
                    None => {
                        let end = self.code.len();
                        self.patch_jump(branch_pc, end);
                    }
                    Some(e) => {
                        let skip_pc = self.code.len();
                        self.code.push(Instr::Jump(usize::MAX));
                        let else_start = self.code.len();
                        self.patch_jump(branch_pc, else_start);
                        self.stmt(e)?;
                        let end = self.code.len();
                        self.patch_jump(skip_pc, end);
                    }
                }
                Ok(())
            }
            Stmt::Case { kind, expr, arms } => {
                let expr = self.el.resolve_expr(self.scope, expr)?;
                let case_pc = self.code.len();
                self.code.push(Instr::CaseJump {
                    expr,
                    kind: *kind,
                    arms: Vec::new(),
                    default: usize::MAX,
                });
                let mut resolved_arms = Vec::new();
                let mut default_target = None;
                let mut end_jumps = Vec::new();
                for arm in arms {
                    let target = self.code.len();
                    if arm.labels.is_empty() {
                        default_target = Some(target);
                    } else {
                        let labels = arm
                            .labels
                            .iter()
                            .map(|l| self.el.resolve_expr(self.scope, l))
                            .collect::<Result<Vec<_>, _>>()?;
                        resolved_arms.push((labels, target));
                    }
                    self.stmt(&arm.body)?;
                    end_jumps.push(self.code.len());
                    self.code.push(Instr::Jump(usize::MAX));
                }
                let end = self.code.len();
                for pc in end_jumps {
                    self.patch_jump(pc, end);
                }
                if let Instr::CaseJump { arms, default, .. } = &mut self.code[case_pc] {
                    *arms = resolved_arms;
                    *default = default_target.unwrap_or(end);
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmt(init)?;
                let loop_start = self.code.len();
                let cond = self.el.resolve_expr(self.scope, cond)?;
                let exit_pc = self.code.len();
                self.code.push(Instr::JumpIfFalse(cond, usize::MAX));
                self.stmt(body)?;
                self.stmt(step)?;
                self.code.push(Instr::Jump(loop_start));
                let end = self.code.len();
                self.patch_jump(exit_pc, end);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let loop_start = self.code.len();
                let cond = self.el.resolve_expr(self.scope, cond)?;
                let exit_pc = self.code.len();
                self.code.push(Instr::JumpIfFalse(cond, usize::MAX));
                self.stmt(body)?;
                self.code.push(Instr::Jump(loop_start));
                let end = self.code.len();
                self.patch_jump(exit_pc, end);
                Ok(())
            }
            Stmt::Repeat { count, body } => {
                // Lower to a hidden counter:
                //   tmp = count; while (tmp != 0) { body; tmp = tmp - 1; }
                let count = self.el.resolve_expr(self.scope, count)?;
                let slot = self.el.fresh_temp(self.prefix, 32);
                let slot_expr = RExpr {
                    width: 32,
                    signed: false,
                    kind: RExprKind::Sig(slot),
                };
                self.code.push(Instr::Assign(RLValue::Sig(slot), count));
                let loop_start = self.code.len();
                let cond = RExpr {
                    width: 1,
                    signed: false,
                    kind: RExprKind::Binary(
                        BinaryOp::Ne,
                        Box::new(slot_expr.clone()),
                        Box::new(RExpr::lit(LogicVec::from_u64(32, 0), false)),
                    ),
                };
                let exit_pc = self.code.len();
                self.code.push(Instr::JumpIfFalse(cond, usize::MAX));
                self.stmt(body)?;
                let dec = RExpr {
                    width: 32,
                    signed: false,
                    kind: RExprKind::Binary(
                        BinaryOp::Sub,
                        Box::new(slot_expr),
                        Box::new(RExpr::lit(LogicVec::from_u64(32, 1), false)),
                    ),
                };
                self.code.push(Instr::Assign(RLValue::Sig(slot), dec));
                self.code.push(Instr::Jump(loop_start));
                let end = self.code.len();
                self.patch_jump(exit_pc, end);
                Ok(())
            }
            Stmt::Forever(body) => {
                let loop_start = self.code.len();
                self.stmt(body)?;
                let had_suspend = self.code[loop_start..]
                    .iter()
                    .any(|i| matches!(i, Instr::Delay(_) | Instr::WaitEvent(_)));
                if !had_suspend {
                    return Err(ElabError::new("forever loop can never suspend"));
                }
                self.code.push(Instr::Jump(loop_start));
                Ok(())
            }
            Stmt::Delay { delay, stmt } => {
                self.code.push(Instr::Delay(*delay));
                if let Some(s) = stmt {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::EventWait { event, stmt } => {
                match event {
                    EventControl::List(list) => {
                        let edges = resolve_event_list(self.scope, list)?;
                        self.code.push(Instr::WaitEvent(edges));
                    }
                    EventControl::Star => {
                        return Err(ElabError::new("@(*) is only supported on always blocks"));
                    }
                }
                if let Some(s) = stmt {
                    self.stmt(s)?;
                }
                Ok(())
            }
            Stmt::SysCall { name, args } => {
                match name.as_str() {
                    "$display" | "$fdisplay" | "$write" | "$fwrite" | "$monitor" | "$finish"
                    | "$stop" | "$fopen" | "$fclose" | "$dumpfile" | "$dumpvars" => {}
                    other => {
                        return Err(ElabError::new(format!("unsupported system task `{other}`")))
                    }
                }
                let args = args
                    .iter()
                    .map(|a| {
                        Ok(match a {
                            SysArg::Str(s) => RSysArg::Str(s.clone()),
                            SysArg::Expr(e) => RSysArg::Expr(self.el.resolve_expr(self.scope, e)?),
                        })
                    })
                    .collect::<Result<Vec<_>, ElabError>>()?;
                self.code.push(Instr::SysCall {
                    name: name.clone(),
                    args,
                });
                Ok(())
            }
            Stmt::Empty => Ok(()),
        }
    }

    fn patch_jump(&mut self, pc: usize, target: usize) {
        match &mut self.code[pc] {
            Instr::Jump(t) => *t = target,
            Instr::JumpIfFalse(_, t) => *t = target,
            other => panic!("patch target is not a jump: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn elab(src: &str, top: &str) -> Design {
        elaborate(&parse(src).expect("parse"), top).expect("elaborate")
    }

    #[test]
    fn simple_design() {
        let d = elab(
            "module m(input a, b, output y); assign y = a & b; endmodule",
            "m",
        );
        assert_eq!(d.signals.len(), 3);
        assert_eq!(d.assigns.len(), 1);
        assert!(d.signal_by_name("y").is_some());
    }

    #[test]
    fn parameters_fold() {
        let d = elab(
            "module m(input clk, output reg [1:0] s);\nlocalparam RUN = 2'd1;\nalways @(posedge clk) s <= RUN;\nendmodule",
            "m",
        );
        let p = &d.processes[0];
        assert!(matches!(p.code[0], Instr::WaitEvent(_)));
        match &p.code[1] {
            Instr::NbAssign(_, rhs) => match &rhs.kind {
                RExprKind::Lit(v) => assert_eq!(v.to_u64(), Some(1)),
                other => panic!("expected folded literal, got {other:?}"),
            },
            other => panic!("expected nb assign, got {other:?}"),
        }
    }

    #[test]
    fn hierarchy_flattens() {
        let d = elab(
            "module inv(input a, output y); assign y = ~a; endmodule\nmodule top(input x, output z);\nwire mid;\ninv u1(.a(x), .y(mid));\ninv u2(.a(mid), .y(z));\nendmodule",
            "top",
        );
        assert!(d.signal_by_name("u1.a").is_some());
        assert!(d.signal_by_name("u2.y").is_some());
        // 3 top signals + 2*2 instance signals; 2 inner assigns + 4 bindings
        assert_eq!(d.assigns.len(), 6);
    }

    #[test]
    fn undeclared_identifier_errors() {
        let r = elaborate(
            &parse("module m(output y); assign y = nope; endmodule").expect("parse"),
            "m",
        );
        assert!(r.is_err());
    }

    #[test]
    fn assign_to_reg_errors() {
        let r = elaborate(
            &parse("module m(input a, output reg y); assign y = a; endmodule").expect("parse"),
            "m",
        );
        assert!(r.is_err());
    }

    #[test]
    fn procedural_write_to_wire_errors() {
        let r = elaborate(
            &parse("module m(input clk, a, output y); always @(posedge clk) y = a; endmodule")
                .expect("parse"),
            "m",
        );
        assert!(r.is_err());
    }

    #[test]
    fn always_without_suspend_errors() {
        let r = elaborate(
            &parse("module m(output reg y); always y = ~y; endmodule").expect("parse"),
            "m",
        );
        assert!(r.is_err());
    }

    #[test]
    fn missing_module_errors() {
        let r = elaborate(
            &parse("module top; wire y; foo u(.y(y)); endmodule").expect("parse"),
            "top",
        );
        assert!(r.is_err());
        assert!(elaborate(&parse("module a; endmodule").expect("parse"), "b").is_err());
    }

    #[test]
    fn non_zero_lsb_rebases() {
        let d = elab(
            "module m(input [7:4] a, output y); assign y = a[5]; endmodule",
            "m",
        );
        match &d.assigns[0].rhs.kind {
            RExprKind::Bit(_, idx) => {
                // index 5 - lsb 4 = 1 after folding a Sub of literals; the
                // elaborator emits the Sub node, const-evaluable to 1.
                let v = const_eval(idx).expect("const");
                assert_eq!(v.to_u64(), Some(1));
            }
            other => panic!("expected bit select, got {other:?}"),
        }
    }

    #[test]
    fn repeat_lowering() {
        let d = elab(
            "module m;\nreg [3:0] x;\ninitial begin x = 0; repeat (3) begin #1 x = x + 1; end end\nendmodule",
            "m",
        );
        // repeat lowers to a temp counter: a $tmp signal exists.
        assert!(d.signals.iter().any(|s| s.name.contains("$tmp")));
    }

    #[test]
    fn star_sensitivity_collects_reads() {
        let d = elab(
            "module m(input [1:0] s, input a, b, output reg y);\nalways @(*) begin if (s[0]) y = a; else y = b; end\nendmodule",
            "m",
        );
        let p = &d.processes[0];
        // Code shape: body..., WaitEvent, body..., Jump
        let wait = p
            .code
            .iter()
            .find_map(|i| match i {
                Instr::WaitEvent(edges) => Some(edges.clone()),
                _ => None,
            })
            .expect("wait");
        assert_eq!(wait.len(), 3); // s, a, b
    }

    #[test]
    fn clog2() {
        let d = elab(
            "module m(output [31:0] y); assign y = $clog2(13); endmodule",
            "m",
        );
        match &d.assigns[0].rhs.kind {
            RExprKind::Lit(v) => assert_eq!(v.to_u64(), Some(4)),
            other => panic!("expected literal, got {other:?}"),
        }
    }
}
