//! Event-driven simulation of an elaborated [`Design`].
//!
//! The scheduler follows the usual stratified event regions: at each
//! simulation time, *active* events (process resumptions and continuous
//! assignment re-evaluations) run to exhaustion, then queued non-blocking
//! assignments commit as one batch (possibly waking more active events —
//! a delta cycle), and only when both are empty does time advance to the
//! next scheduled delay. Combinational oscillation is caught by a
//! delta-cycle limit; runaway testbenches by a global event budget.

use crate::design::*;
use crate::error::SimError;
use crate::logic::{Bit, LogicVec};
use crate::sysfmt::format_display;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Limits protecting the simulator from pathological generated code.
#[derive(Clone, Copy, Debug)]
pub struct SimLimits {
    /// Max delta cycles within one simulation time before
    /// [`SimError::DeltaOverflow`].
    pub max_deltas: usize,
    /// Max total executed instructions before
    /// [`SimError::EventBudgetExhausted`].
    pub max_steps: u64,
    /// Simulation stops (cleanly) at this time if `$finish` never runs.
    pub max_time: u64,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits {
            max_deltas: 4096,
            max_steps: 10_000_000,
            max_time: 1_000_000,
        }
    }
}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Lines captured from `$display`/`$fdisplay`/`$write`/`$fwrite`.
    pub lines: Vec<String>,
    /// Final simulation time.
    pub end_time: u64,
    /// `true` when the run ended via `$finish` (vs. event exhaustion or
    /// hitting `max_time`).
    pub finished: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProcStatus {
    Ready,
    Waiting,
    Done,
}

struct ProcState {
    pc: usize,
    status: ProcStatus,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Activation {
    Process(usize),
    Assign(usize),
}

/// Watcher entry: who wakes when a signal changes.
#[derive(Clone, Copy, Debug)]
enum Watcher {
    /// Continuous assignment index (level-sensitive, permanent).
    Assign(usize),
    /// Process waiting on an edge (one-shot; re-armed by `WaitEvent`).
    Process { idx: usize, edge: crate::ast::Edge },
}

/// An event-driven simulator over an elaborated design.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use correctbench_verilog::{parse, elaborate, Simulator};
///
/// let src = "
///   module tb;
///     reg [3:0] a;
///     wire [3:0] y;
///     assign y = a + 4'd1;
///     initial begin
///       a = 4'd2;
///       #1 $display(\"y=%0d\", y);
///       $finish;
///     end
///   endmodule";
/// let design = elaborate(&parse(src)?, "tb")?;
/// let out = Simulator::new(&design).run()?;
/// assert_eq!(out.lines, vec!["y=3".to_string()]);
/// # Ok(())
/// # }
/// ```
pub struct Simulator<'d> {
    design: &'d Design,
    values: Vec<LogicVec>,
    time: u64,
    procs: Vec<ProcState>,
    sig_watchers: Vec<Vec<Watcher>>,
    active: VecDeque<Activation>,
    /// Pending NBA commits: (signal, low bit, value).
    nba: Vec<(SignalId, usize, LogicVec)>,
    timed: BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
    seq: u64,
    lines: Vec<String>,
    finished: bool,
    limits: SimLimits,
    steps: u64,
}

struct Store<'a> {
    values: &'a [LogicVec],
    time: u64,
}

impl SigRead for Store<'_> {
    fn read(&self, id: SignalId) -> &LogicVec {
        &self.values[id.0 as usize]
    }
    fn now(&self) -> u64 {
        self.time
    }
}

impl<'d> Simulator<'d> {
    /// Creates a simulator with default [`SimLimits`].
    pub fn new(design: &'d Design) -> Self {
        Self::with_limits(design, SimLimits::default())
    }

    /// Creates a simulator with explicit limits.
    pub fn with_limits(design: &'d Design, limits: SimLimits) -> Self {
        let values = design
            .signals
            .iter()
            .map(|s| LogicVec::filled_x(s.width))
            .collect();
        let procs = design
            .processes
            .iter()
            .map(|_| ProcState {
                pc: 0,
                status: ProcStatus::Ready,
            })
            .collect();
        let mut sig_watchers: Vec<Vec<Watcher>> = vec![Vec::new(); design.signals.len()];
        for (i, a) in design.assigns.iter().enumerate() {
            for s in &a.reads {
                sig_watchers[s.0 as usize].push(Watcher::Assign(i));
            }
        }
        Simulator {
            design,
            values,
            time: 0,
            procs,
            sig_watchers,
            active: VecDeque::new(),
            nba: Vec::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            lines: Vec::new(),
            finished: false,
            limits,
            steps: 0,
        }
    }

    /// Runs to `$finish`, event exhaustion, or `max_time`.
    ///
    /// # Errors
    ///
    /// [`SimError::DeltaOverflow`] on combinational loops,
    /// [`SimError::EventBudgetExhausted`] when the instruction budget runs
    /// out (runaway zero-delay loops).
    pub fn run(mut self) -> Result<SimOutput, SimError> {
        // Time zero: all continuous assignments evaluate once, every
        // process starts.
        for i in 0..self.design.assigns.len() {
            self.active.push_back(Activation::Assign(i));
        }
        for i in 0..self.design.processes.len() {
            self.active.push_back(Activation::Process(i));
        }
        self.settle()?;
        while !self.finished {
            let Some(std::cmp::Reverse((t, _, proc))) = self.timed.pop() else {
                break;
            };
            if t > self.limits.max_time {
                break;
            }
            self.time = t;
            self.procs[proc].status = ProcStatus::Ready;
            self.active.push_back(Activation::Process(proc));
            // Pull in everything else scheduled for the same instant.
            while let Some(std::cmp::Reverse((t2, _, _))) = self.timed.peek() {
                if *t2 != t {
                    break;
                }
                let Some(std::cmp::Reverse((_, _, p2))) = self.timed.pop() else {
                    break;
                };
                self.procs[p2].status = ProcStatus::Ready;
                self.active.push_back(Activation::Process(p2));
            }
            self.settle()?;
        }
        Ok(SimOutput {
            lines: self.lines,
            end_time: self.time,
            finished: self.finished,
        })
    }

    /// Runs the active/NBA delta loop at the current time.
    fn settle(&mut self) -> Result<(), SimError> {
        let mut deltas = 0usize;
        // Oscillation through continuous assignments alone never touches
        // the NBA queue, so the activation count itself must be bounded.
        let mut activations = 0usize;
        let activation_budget = self
            .limits
            .max_deltas
            .saturating_mul(self.design.assigns.len() + self.design.processes.len() + 1);
        loop {
            while let Some(act) = self.active.pop_front() {
                if self.finished {
                    return Ok(());
                }
                activations += 1;
                if activations > activation_budget {
                    return Err(SimError::DeltaOverflow { time: self.time });
                }
                match act {
                    Activation::Assign(i) => self.eval_assign(i)?,
                    Activation::Process(i) => self.run_process(i)?,
                }
            }
            if self.nba.is_empty() {
                return Ok(());
            }
            deltas += 1;
            if deltas > self.limits.max_deltas {
                return Err(SimError::DeltaOverflow { time: self.time });
            }
            let updates = std::mem::take(&mut self.nba);
            for (sig, lo, value) in updates {
                self.commit_bits(sig, lo, &value);
            }
        }
    }

    fn eval_assign(&mut self, i: usize) -> Result<(), SimError> {
        let a = &self.design.assigns[i];
        let lhs_width = a.lhs.width(self.design);
        let store = Store {
            values: &self.values,
            time: self.time,
        };
        let value = eval(&a.rhs, lhs_width.max(a.rhs.width), &store);
        let value = value.resize(lhs_width, a.rhs.signed);
        let lhs = a.lhs.clone();
        self.write_lvalue(&lhs, value)?;
        Ok(())
    }

    fn run_process(&mut self, i: usize) -> Result<(), SimError> {
        loop {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(SimError::EventBudgetExhausted);
            }
            let code = &self.design.processes[i].code;
            let pc = self.procs[i].pc;
            let Some(instr) = code.get(pc) else {
                self.procs[i].status = ProcStatus::Done;
                return Ok(());
            };
            match instr.clone() {
                Instr::Assign(lhs, rhs) => {
                    let lhs_width = lhs.width(self.design);
                    let store = Store {
                        values: &self.values,
                        time: self.time,
                    };
                    let v =
                        eval(&rhs, lhs_width.max(rhs.width), &store).resize(lhs_width, rhs.signed);
                    self.write_lvalue(&lhs, v)?;
                    self.procs[i].pc = pc + 1;
                }
                Instr::NbAssign(lhs, rhs) => {
                    let lhs_width = lhs.width(self.design);
                    let store = Store {
                        values: &self.values,
                        time: self.time,
                    };
                    let v =
                        eval(&rhs, lhs_width.max(rhs.width), &store).resize(lhs_width, rhs.signed);
                    self.schedule_nba(&lhs, v)?;
                    self.procs[i].pc = pc + 1;
                }
                Instr::JumpIfFalse(cond, target) => {
                    let store = Store {
                        values: &self.values,
                        time: self.time,
                    };
                    let t = eval(&cond, cond.width, &store).truthy();
                    self.procs[i].pc = if t == Bit::One { pc + 1 } else { target };
                }
                Instr::Jump(target) => {
                    self.procs[i].pc = target;
                }
                Instr::CaseJump {
                    expr,
                    kind,
                    arms,
                    default,
                } => {
                    let store = Store {
                        values: &self.values,
                        time: self.time,
                    };
                    let sel_w = arms
                        .iter()
                        .flat_map(|(ls, _)| ls.iter().map(|l| l.width))
                        .fold(expr.width, usize::max);
                    let sel = eval(&expr, sel_w, &store);
                    let mut target = default;
                    'arms: for (labels, t) in &arms {
                        for l in labels {
                            let lv = eval(l, sel_w, &store);
                            let hit = match kind {
                                crate::ast::CaseKind::Case => sel.eq_case(&lv) == Bit::One,
                                crate::ast::CaseKind::Casez => sel.casez_match(&lv),
                                crate::ast::CaseKind::Casex => casex_match(&sel, &lv),
                            };
                            if hit {
                                target = *t;
                                break 'arms;
                            }
                        }
                    }
                    self.procs[i].pc = target;
                }
                Instr::Delay(d) => {
                    self.procs[i].pc = pc + 1;
                    self.procs[i].status = ProcStatus::Waiting;
                    self.seq += 1;
                    self.timed
                        .push(std::cmp::Reverse((self.time + d, self.seq, i)));
                    return Ok(());
                }
                Instr::WaitEvent(edges) => {
                    self.procs[i].pc = pc + 1;
                    self.procs[i].status = ProcStatus::Waiting;
                    for (edge, sig) in edges {
                        self.sig_watchers[sig.0 as usize].push(Watcher::Process { idx: i, edge });
                    }
                    return Ok(());
                }
                Instr::SysCall { name, args } => {
                    self.syscall(&name, &args);
                    if self.finished {
                        return Ok(());
                    }
                    self.procs[i].pc = pc + 1;
                }
                Instr::Halt => {
                    self.procs[i].status = ProcStatus::Done;
                    return Ok(());
                }
            }
        }
    }

    fn syscall(&mut self, name: &str, args: &[RSysArg]) {
        match name {
            "$finish" | "$stop" => {
                self.finished = true;
            }
            "$display" | "$write" => {
                let line = self.render(args, 0);
                self.lines.push(line);
            }
            "$fdisplay" | "$fwrite" => {
                // First argument is the file descriptor; we capture
                // everything into one stream.
                let line = self.render(args, 1);
                self.lines.push(line);
            }
            "$monitor" | "$fopen" | "$fclose" | "$dumpfile" | "$dumpvars" => {
                // Accepted but inert: generated testbenches sometimes emit
                // these; Icarus would honour them, we do not need to.
            }
            _ => {}
        }
    }

    fn render(&self, args: &[RSysArg], skip: usize) -> String {
        let store = Store {
            values: &self.values,
            time: self.time,
        };
        let args = &args[skip.min(args.len())..];
        let (fmt, rest): (String, &[RSysArg]) = match args.first() {
            Some(RSysArg::Str(s)) => (s.clone(), &args[1..]),
            _ => {
                // No format string: default-format every argument.
                let mut parts = Vec::new();
                for a in args {
                    if let RSysArg::Expr(e) = a {
                        parts.push(eval(e, e.width, &store).to_decimal_string());
                    }
                }
                return parts.join(" ");
            }
        };
        let values: Vec<LogicVec> = rest
            .iter()
            .filter_map(|a| match a {
                RSysArg::Expr(e) => Some(eval(e, e.width, &store)),
                RSysArg::Str(_) => None,
            })
            .collect();
        format_display(&fmt, &values, self.time)
    }

    /// Immediately writes `value` through an lvalue (blocking semantics).
    fn write_lvalue(&mut self, lhs: &RLValue, value: LogicVec) -> Result<(), SimError> {
        match lhs {
            RLValue::Sig(s) => {
                self.commit_bits(*s, 0, &value);
                Ok(())
            }
            RLValue::Part(s, lo, w) => {
                self.commit_bits(*s, *lo, &value.slice(0, *w));
                Ok(())
            }
            RLValue::Bit(s, idx) => {
                let store = Store {
                    values: &self.values,
                    time: self.time,
                };
                let i = eval(idx, idx.width, &store);
                if let Some(i) = i.to_u64() {
                    let width = self.design.signal(*s).width;
                    if (i as usize) < width {
                        self.commit_bits(*s, i as usize, &value.slice(0, 1));
                    }
                }
                Ok(())
            }
            RLValue::IndexedPart(s, base, w) => {
                let store = Store {
                    values: &self.values,
                    time: self.time,
                };
                let b = eval(base, base.width, &store);
                if let Some(lo) = b.to_u64() {
                    self.commit_bits(*s, lo as usize, &value.slice(0, *w));
                }
                Ok(())
            }
            RLValue::Concat(parts) => {
                // MSB-first: the last part takes the low bits.
                let mut lo = 0usize;
                for part in parts.iter().rev() {
                    let w = part.width(self.design);
                    let chunk = value.slice(lo, w);
                    self.write_lvalue(part, chunk)?;
                    lo += w;
                }
                Ok(())
            }
        }
    }

    /// Schedules an NBA update.
    fn schedule_nba(&mut self, lhs: &RLValue, value: LogicVec) -> Result<(), SimError> {
        match lhs {
            RLValue::Sig(s) => {
                self.nba.push((*s, 0, value));
                Ok(())
            }
            RLValue::Part(s, lo, w) => {
                self.nba.push((*s, *lo, value.slice(0, *w)));
                Ok(())
            }
            RLValue::Bit(s, idx) => {
                let store = Store {
                    values: &self.values,
                    time: self.time,
                };
                if let Some(i) = eval(idx, idx.width, &store).to_u64() {
                    let width = self.design.signal(*s).width;
                    if (i as usize) < width {
                        self.nba.push((*s, i as usize, value.slice(0, 1)));
                    }
                }
                Ok(())
            }
            RLValue::IndexedPart(s, base, w) => {
                let store = Store {
                    values: &self.values,
                    time: self.time,
                };
                if let Some(lo) = eval(base, base.width, &store).to_u64() {
                    self.nba.push((*s, lo as usize, value.slice(0, *w)));
                }
                Ok(())
            }
            RLValue::Concat(parts) => {
                let mut lo = 0usize;
                for part in parts.iter().rev() {
                    let w = part.width(self.design);
                    let chunk = value.slice(lo, w);
                    self.schedule_nba(part, chunk)?;
                    lo += w;
                }
                Ok(())
            }
        }
    }

    /// Writes `bits` into `sig` starting at `lo`, firing watchers when the
    /// stored value actually changes.
    fn commit_bits(&mut self, sig: SignalId, lo: usize, bits: &LogicVec) {
        let slot = &mut self.values[sig.0 as usize];
        let width = slot.width();
        if lo >= width {
            return;
        }
        let old_lsb = slot.bit(0);
        let mut new = slot.clone();
        for i in 0..bits.width().min(width - lo) {
            new.set_bit(lo + i, bits.bit(i));
        }
        if new == *slot {
            return;
        }
        *slot = new;
        let new_lsb = self.values[sig.0 as usize].bit(0);

        // Wake watchers. Edge-qualified watchers look at bit 0 (clocks and
        // resets are 1-bit in practice).
        let watchers = std::mem::take(&mut self.sig_watchers[sig.0 as usize]);
        let mut keep = Vec::with_capacity(watchers.len());
        for w in watchers {
            match w {
                Watcher::Assign(i) => {
                    self.active.push_back(Activation::Assign(i));
                    keep.push(w);
                }
                Watcher::Process { idx, edge } => {
                    let fire = match edge {
                        crate::ast::Edge::Any => true,
                        crate::ast::Edge::Pos => old_lsb != Bit::One && new_lsb == Bit::One,
                        crate::ast::Edge::Neg => old_lsb != Bit::Zero && new_lsb == Bit::Zero,
                    };
                    if fire && self.procs[idx].status == ProcStatus::Waiting {
                        self.procs[idx].status = ProcStatus::Ready;
                        self.active.push_back(Activation::Process(idx));
                        self.remove_process_watchers(idx, sig);
                    } else if fire {
                        // Already woken via another signal this delta;
                        // watcher is stale either way.
                    } else {
                        keep.push(w);
                    }
                }
            }
        }
        self.sig_watchers[sig.0 as usize] = keep;
    }

    /// Removes the remaining one-shot watchers of `proc` from every other
    /// signal (it woke via `except`, whose list is being rebuilt by the
    /// caller).
    fn remove_process_watchers(&mut self, proc: usize, except: SignalId) {
        for (s, ws) in self.sig_watchers.iter_mut().enumerate() {
            if s == except.0 as usize {
                continue;
            }
            ws.retain(|w| !matches!(w, Watcher::Process { idx, .. } if *idx == proc));
        }
    }

    /// Reads a signal's current value (test and harness access).
    pub fn value(&self, sig: SignalId) -> &LogicVec {
        &self.values[sig.0 as usize]
    }
}

fn casex_match(sel: &LogicVec, pat: &LogicVec) -> bool {
    let width = sel.width().max(pat.width());
    let a = sel.zero_extend(width);
    let p = pat.zero_extend(width);
    for i in 0..width {
        let pb = p.bit(i);
        let ab = a.bit(i);
        if !pb.is_known() || !ab.is_known() {
            continue;
        }
        if pb != ab {
            return false;
        }
    }
    true
}

/// Convenience: parse, elaborate and simulate `src` with `top` as the root.
///
/// # Errors
///
/// Any [`crate::error::VerilogError`] from the front end or the run.
pub fn run_source(src: &str, top: &str) -> Result<SimOutput, crate::error::VerilogError> {
    let file = crate::parser::parse(src)?;
    let design = crate::elaborate::elaborate(&file, top)?;
    Ok(Simulator::new(&design).run()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, top: &str) -> SimOutput {
        run_source(src, top).expect("simulation ok")
    }

    #[test]
    fn combinational_assign() {
        let out = run(
            "module tb;\nreg [3:0] a, b;\nwire [3:0] y;\nassign y = a + b;\ninitial begin\na = 4'd3; b = 4'd4;\n#1 $display(\"y=%0d\", y);\na = 4'd9;\n#1 $display(\"y=%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["y=7", "y=13"]);
        assert!(out.finished);
    }

    #[test]
    fn clocked_register() {
        let out = run(
            "module tb;\nreg clk, d;\nreg q;\nalways @(posedge clk) q <= d;\ninitial begin\nclk = 0; d = 1;\n#1 $display(\"q=%b\", q);\n#4 clk = 1;\n#1 $display(\"q=%b\", q);\nd = 0;\n#4 clk = 0;\n#5 clk = 1;\n#1 $display(\"q=%b\", q);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["q=x", "q=1", "q=0"]);
    }

    #[test]
    fn nonblocking_swap() {
        let out = run(
            "module tb;\nreg clk;\nreg [3:0] a, b;\nalways @(posedge clk) begin a <= b; b <= a; end\ninitial begin\nclk = 0; a = 4'd1; b = 4'd2;\n#5 clk = 1;\n#1 $display(\"a=%0d b=%0d\", a, b);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["a=2 b=1"]);
    }

    #[test]
    fn clock_generator_and_counter() {
        let out = run(
            "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg [7:0] n = 0;\nalways @(posedge clk) n <= n + 8'd1;\ninitial begin\n#52 $display(\"n=%0d\", n);\n$finish;\nend\nendmodule",
            "tb",
        );
        // Posedges at 5,15,25,35,45 -> n == 5 at t=52.
        assert_eq!(out.lines, vec!["n=5"]);
    }

    #[test]
    fn dut_instance() {
        let out = run(
            "module add1(input [3:0] a, output [3:0] y);\nassign y = a + 4'd1;\nendmodule\nmodule tb;\nreg [3:0] a;\nwire [3:0] y;\nadd1 dut(.a(a), .y(y));\ninitial begin\na = 4'd7;\n#1 $display(\"y=%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["y=8"]);
    }

    #[test]
    fn always_star_mux() {
        let out = run(
            "module tb;\nreg s;\nreg [3:0] a, b;\nreg [3:0] y;\nalways @(*) begin if (s) y = a; else y = b; end\ninitial begin\na = 4'd10; b = 4'd5; s = 0;\n#1 $display(\"y=%0d\", y);\ns = 1;\n#1 $display(\"y=%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["y=5", "y=10"]);
    }

    #[test]
    fn combinational_loop_detected() {
        let r = run_source(
            "module tb;\nwire a, b;\nassign a = ~b;\nassign b = ~a;\ninitial #1 $finish;\nendmodule",
            "tb",
        );
        // a and b start x; ~x = x, so this particular loop actually
        // settles. Make a real oscillator with known values instead.
        assert!(r.is_ok());
        // A ring that escapes the x fixpoint via ===, then oscillates.
        let r2 = run_source(
            "module tb;\nwire a, b;\nassign a = (b === 1'bx) ? 1'b0 : ~b;\nassign b = a;\ninitial #1 $finish;\nendmodule",
            "tb",
        );
        match r2 {
            Err(crate::error::VerilogError::Sim(SimError::DeltaOverflow { .. })) => {}
            other => panic!("expected delta overflow, got {other:?}"),
        }
    }

    #[test]
    fn zero_delay_runaway_caught() {
        let src =
            "module tb;\nreg x;\ninitial begin x = 0; forever begin #0; x = ~x; end end\nendmodule";
        // #0 delays still advance the queue at the same time; the step
        // budget eventually trips.
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, "tb").expect("elab");
        let limits = SimLimits {
            max_steps: 10_000,
            ..SimLimits::default()
        };
        let r = Simulator::with_limits(&design, limits).run();
        assert!(matches!(r, Err(SimError::EventBudgetExhausted)));
    }

    #[test]
    fn for_loop_popcount() {
        let out = run(
            "module tb;\nreg [7:0] v;\nreg [3:0] n;\ninteger i;\ninitial begin\nv = 8'b1011_0110;\nn = 0;\nfor (i = 0; i < 8; i = i + 1) if (v[i]) n = n + 1;\n$display(\"n=%0d\", n);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["n=5"]);
    }

    #[test]
    fn case_statement() {
        let out = run(
            "module tb;\nreg [1:0] s;\nreg [3:0] y;\nalways @(*) begin\ncase (s)\n2'd0: y = 4'd1;\n2'd1: y = 4'd2;\ndefault: y = 4'd15;\nendcase\nend\ninitial begin\ns = 2'd0; #1 $display(\"%0d\", y);\ns = 2'd1; #1 $display(\"%0d\", y);\ns = 2'd3; #1 $display(\"%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["1", "2", "15"]);
    }

    #[test]
    fn event_wait_in_initial() {
        let out = run(
            "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\ninitial begin\n@(posedge clk);\n$display(\"t=%0d\", $time);\n@(posedge clk);\n$display(\"t=%0d\", $time);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["t=5", "t=15"]);
    }

    #[test]
    fn part_select_write() {
        let out = run(
            "module tb;\nreg [7:0] v;\ninitial begin\nv = 8'h00;\nv[3:0] = 4'hf;\nv[6] = 1'b1;\n$display(\"%h\", v);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["4f"]);
    }

    #[test]
    fn concat_lvalue() {
        let out = run(
            "module tb;\nreg [3:0] hi, lo;\ninitial begin\n{hi, lo} = 8'hA5;\n$display(\"%h %h\", hi, lo);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["a 5"]);
    }

    #[test]
    fn max_time_stops_unfinished_run() {
        let src = "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nendmodule";
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, "tb").expect("elab");
        let limits = SimLimits {
            max_time: 100,
            ..SimLimits::default()
        };
        let out = Simulator::with_limits(&design, limits).run().expect("run");
        assert!(!out.finished);
        assert!(out.end_time <= 105);
    }

    #[test]
    fn sequential_sr_with_sync_reset() {
        let out = run(
            "module tb;\nreg clk = 0, rst;\nalways #5 clk = ~clk;\nreg [3:0] q;\nalways @(posedge clk) begin\nif (rst) q <= 4'd0; else q <= q + 4'd1;\nend\ninitial begin\nrst = 1;\n#12 rst = 0;\n#40 $display(\"q=%0d\", q);\n$finish;\nend\nendmodule",
            "tb",
        );
        // Posedges: 5 (rst), 15,25,35,45 counting -> q=4 at t=52.
        assert_eq!(out.lines, vec!["q=4"]);
    }
}
