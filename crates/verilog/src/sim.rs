//! Event-driven simulation of an elaborated [`Design`].
//!
//! The scheduler follows the usual stratified event regions: at each
//! simulation time, *active* events (process resumptions and continuous
//! assignment re-evaluations) run to exhaustion, then queued non-blocking
//! assignments commit as one batch (possibly waking more active events —
//! a delta cycle), and only when both are empty does time advance to the
//! next scheduled delay. Combinational oscillation is caught by a
//! delta-cycle limit; runaway testbenches by a global event budget.
//!
//! # Execution modes
//!
//! The simulator runs a [`CompiledDesign`] in one of two modes:
//!
//! * [`ExecMode::Bytecode`] (the default) executes the compile-once
//!   register bytecode of [`crate::compile`]: no per-step instruction
//!   cloning, no per-node allocation — the scratch register file is
//!   preallocated once and every op mutates it in place.
//! * [`ExecMode::TreeWalk`] interprets the elaborated `RExpr` trees
//!   directly. It is the executable semantic reference the differential
//!   tests compare the bytecode against, and the baseline the benchmarks
//!   measure the speedup from.
//!
//! Both modes share the scheduler, the commit/wake machinery and the
//! system-task handling; a run's [`SimOutput`] is identical by
//! construction of the bytecode and verified by the differential
//! proptests in [`crate::compile`] and the whole-design differential
//! suite `crates/tbgen/tests/exec_diff.rs`.

use crate::compile::{exec_unit, CInstr, CLValue, CSysArg, CompiledDesign, ExprId, ValueStore};
use crate::design::*;
use crate::error::SimError;
use crate::logic::{Bit, LogicVec};
use crate::sysfmt::format_display;
use std::collections::BinaryHeap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Limits protecting the simulator from pathological generated code.
#[derive(Clone, Copy, Debug)]
pub struct SimLimits {
    /// Max delta cycles within one simulation time before
    /// [`SimError::DeltaOverflow`].
    pub max_deltas: usize,
    /// Max total executed instructions before
    /// [`SimError::EventBudgetExhausted`].
    pub max_steps: u64,
    /// Simulation stops (cleanly) at this time if `$finish` never runs.
    pub max_time: u64,
    /// Optional wall-clock deadline: the run fails with
    /// [`SimError::DeadlineExceeded`] once this instant passes. Checked
    /// every few thousand executed instructions, so enforcement is
    /// approximate — and inherently non-deterministic, unlike the step
    /// budget above.
    pub deadline: Option<std::time::Instant>,
}

impl Default for SimLimits {
    fn default() -> Self {
        SimLimits {
            max_deltas: 4096,
            max_steps: 10_000_000,
            max_time: 1_000_000,
            deadline: None,
        }
    }
}

/// How the simulator executes process bodies and expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecMode {
    /// Register bytecode over a preallocated scratch file (fast path).
    #[default]
    Bytecode,
    /// Direct interpretation of the `RExpr` trees (semantic reference).
    TreeWalk,
}

/// The result of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Lines captured from `$display`/`$fdisplay`/`$write`/`$fwrite`.
    pub lines: Vec<String>,
    /// Final simulation time.
    pub end_time: u64,
    /// `true` when the run ended via `$finish` (vs. event exhaustion or
    /// hitting `max_time`).
    pub finished: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ProcStatus {
    Ready,
    Waiting,
    Done,
}

struct ProcState {
    pc: usize,
    status: ProcStatus,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Activation {
    Process(usize),
    Assign(usize),
}

/// Watcher entry: who wakes when a signal changes.
#[derive(Clone, Copy, Debug)]
enum Watcher {
    /// Continuous assignment index (level-sensitive, permanent).
    Assign(usize),
    /// Process waiting on an edge (one-shot; re-armed by `WaitEvent`).
    Process { idx: usize, edge: crate::ast::Edge },
}

/// Either a borrowed, pre-compiled design (the run-many hot path), one
/// compiled and owned by this simulator (the convenience constructors),
/// or a shared handle (the session hot path: the simulator owns an `Arc`
/// so it is `'static` and can live inside a long-lived session next to
/// the cache entry it executes).
enum DesignRef<'d> {
    Borrowed(&'d CompiledDesign),
    Owned(Box<CompiledDesign>),
    Shared(Arc<CompiledDesign>),
}

impl DesignRef<'_> {
    fn get(&self) -> &CompiledDesign {
        match self {
            DesignRef::Borrowed(cd) => cd,
            DesignRef::Owned(cd) => cd,
            DesignRef::Shared(cd) => cd,
        }
    }
}

/// An event-driven simulator over an elaborated design.
///
/// # Examples
///
/// One-shot simulation from a [`Design`]:
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use correctbench_verilog::{parse, elaborate, Simulator};
///
/// let src = "
///   module tb;
///     reg [3:0] a;
///     wire [3:0] y;
///     assign y = a + 4'd1;
///     initial begin
///       a = 4'd2;
///       #1 $display(\"y=%0d\", y);
///       $finish;
///     end
///   endmodule";
/// let design = elaborate(&parse(src)?, "tb")?;
/// let out = Simulator::new(&design).run()?;
/// assert_eq!(out.lines, vec!["y=3".to_string()]);
/// # Ok(())
/// # }
/// ```
///
/// Compile once, run many (the harness hot path — repeated runs reuse
/// the bytecode, the literal pool and the flattened design):
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use correctbench_verilog::{compile, parse, elaborate, Simulator};
///
/// let src = "module tb; initial begin $display(\"hi\"); $finish; end endmodule";
/// let compiled = compile(&elaborate(&parse(src)?, "tb")?);
/// for _ in 0..3 {
///     assert_eq!(Simulator::from_compiled(&compiled).run()?.lines, vec!["hi"]);
/// }
/// # Ok(())
/// # }
/// ```
pub struct Simulator<'d> {
    compiled: DesignRef<'d>,
    state: SimState,
    mode: ExecMode,
}

impl<'d> Simulator<'d> {
    /// Creates a simulator with default [`SimLimits`], compiling the
    /// design. Prefer [`Simulator::from_compiled`] when the same design
    /// is simulated more than once.
    pub fn new(design: &'d Design) -> Self {
        Self::with_limits(design, SimLimits::default())
    }

    /// Creates a simulator with explicit limits, compiling the design.
    pub fn with_limits(design: &'d Design, limits: SimLimits) -> Self {
        let compiled = Box::new(CompiledDesign::new(design.clone()));
        let state = SimState::new(&compiled, limits);
        Simulator {
            compiled: DesignRef::Owned(compiled),
            state,
            mode: ExecMode::default(),
        }
    }

    /// Creates a simulator over a pre-compiled design with default
    /// limits. Construction allocates only the value and scratch tables.
    pub fn from_compiled(compiled: &'d CompiledDesign) -> Self {
        Self::from_compiled_with_limits(compiled, SimLimits::default())
    }

    /// [`Simulator::from_compiled`] with explicit limits.
    pub fn from_compiled_with_limits(compiled: &'d CompiledDesign, limits: SimLimits) -> Self {
        let state = SimState::new(compiled, limits);
        Simulator {
            compiled: DesignRef::Borrowed(compiled),
            state,
            mode: ExecMode::default(),
        }
    }

    /// Creates a `'static` simulator that co-owns a shared compiled
    /// design: the session constructor. Pair with [`Simulator::reset`] to
    /// sweep many runs over one design without reconstructing the value
    /// table, the scratch file, or the scheduler queues.
    pub fn from_shared(compiled: Arc<CompiledDesign>) -> Simulator<'static> {
        Self::from_shared_with_limits(compiled, SimLimits::default())
    }

    /// [`Simulator::from_shared`] with explicit limits.
    pub fn from_shared_with_limits(
        compiled: Arc<CompiledDesign>,
        limits: SimLimits,
    ) -> Simulator<'static> {
        let state = SimState::new(&compiled, limits);
        Simulator {
            compiled: DesignRef::Shared(compiled),
            state,
            mode: ExecMode::default(),
        }
    }

    /// Selects the execution mode (default [`ExecMode::Bytecode`]).
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the simulation limits for the next run (sessions bound
    /// `max_time` per scenario schedule).
    pub fn set_limits(&mut self, limits: SimLimits) {
        self.state.limits = limits;
    }

    /// `true` when this simulator executes `compiled` (sessions use this
    /// to decide between [`Simulator::reset`] and reconstruction).
    pub fn shares(&self, compiled: &Arc<CompiledDesign>) -> bool {
        match &self.compiled {
            DesignRef::Shared(cd) => Arc::ptr_eq(cd, compiled),
            _ => false,
        }
    }

    /// Reads a signal's current value (test and harness access).
    pub fn value(&self, sig: SignalId) -> &LogicVec {
        &self.state.values[sig.0 as usize]
    }

    /// Runs to `$finish`, event exhaustion, or `max_time`.
    ///
    /// Runs continue from the current state: a freshly constructed (or
    /// [`reset`](Simulator::reset)) simulator performs a whole
    /// simulation; calling `run` again after completion without a reset
    /// observes the final state and returns immediately-empty output.
    ///
    /// # Errors
    ///
    /// [`SimError::DeltaOverflow`] on combinational loops,
    /// [`SimError::EventBudgetExhausted`] when the instruction budget runs
    /// out (runaway zero-delay loops).
    pub fn run(&mut self) -> Result<SimOutput, SimError> {
        let _span = correctbench_obs::span(correctbench_obs::Phase::Simulate);
        let Simulator {
            compiled,
            state,
            mode,
        } = self;
        let steps_before = state.steps;
        let out = state.run(compiled.get(), *mode);
        // Flush the run's work volumes to the job's collector (inert
        // when none is armed). The accumulators are pure measurement
        // fields, zeroed after flush so a session's next run reports its
        // own delta.
        correctbench_obs::add(
            correctbench_obs::Counter::SimInstrs,
            state.steps - steps_before,
        );
        correctbench_obs::add(
            correctbench_obs::Counter::SimEvents,
            std::mem::take(&mut state.events),
        );
        correctbench_obs::add(
            correctbench_obs::Counter::NbaCommits,
            std::mem::take(&mut state.nba_commits),
        );
        out
    }

    /// Rewinds every piece of mutable simulation state to power-on —
    /// value table back to all-x, scratch registers to their compiled
    /// widths, scheduler queues, watcher lists, captured lines, time and
    /// budgets all cleared — **without releasing any allocation** that
    /// still fits. A reset simulator is observationally identical to a
    /// newly constructed one (pinned by `reset_replays_identically`); the
    /// point is that a session sweeping N runs pays the table setup once,
    /// not N times.
    pub fn reset(&mut self) {
        let Simulator {
            compiled, state, ..
        } = self;
        state.reset(compiled.get());
    }
}

/// All mutable simulation state, split from the (shared, immutable)
/// compiled design so the executor borrows instead of cloning: an
/// instruction reference from the design and mutable access to values,
/// scratch registers and scheduler queues coexist without any per-step
/// `Instr`/`RExpr` clone.
struct SimState {
    values: Vec<LogicVec>,
    /// Bytecode scratch registers, preallocated at their compiled widths.
    scratch: Vec<LogicVec>,
    time: u64,
    procs: Vec<ProcState>,
    sig_watchers: Vec<Vec<Watcher>>,
    active: VecDeque<Activation>,
    /// Pending NBA commits: (signal, low bit, value).
    nba: Vec<(SignalId, usize, LogicVec)>,
    /// Drain buffer the NBA queue swaps into each delta, so neither
    /// vector ever gives its capacity back mid-run.
    nba_scratch: Vec<(SignalId, usize, LogicVec)>,
    timed: BinaryHeap<std::cmp::Reverse<(u64, u64, usize)>>,
    seq: u64,
    lines: Vec<String>,
    finished: bool,
    limits: SimLimits,
    steps: u64,
    /// Activations processed since the last observability flush
    /// (measurement only — never read by simulation logic).
    events: u64,
    /// NBA commits applied since the last observability flush
    /// (measurement only).
    nba_commits: u64,
}

impl SimState {
    fn new(cd: &CompiledDesign, limits: SimLimits) -> SimState {
        let design = cd.design();
        let values = design
            .signals
            .iter()
            .map(|s| LogicVec::filled_x(s.width))
            .collect();
        let procs = design
            .processes
            .iter()
            .map(|_| ProcState {
                pc: 0,
                status: ProcStatus::Ready,
            })
            .collect();
        let mut sig_watchers: Vec<Vec<Watcher>> = vec![Vec::new(); design.signals.len()];
        for (i, a) in design.assigns.iter().enumerate() {
            for s in &a.reads {
                sig_watchers[s.0 as usize].push(Watcher::Assign(i));
            }
        }
        SimState {
            values,
            scratch: cd.new_scratch(),
            time: 0,
            procs,
            sig_watchers,
            active: VecDeque::new(),
            nba: Vec::new(),
            nba_scratch: Vec::new(),
            timed: BinaryHeap::new(),
            seq: 0,
            lines: Vec::new(),
            finished: false,
            limits,
            steps: 0,
            events: 0,
            nba_commits: 0,
        }
    }

    /// Rewinds to power-on state in place, preserving allocations: value
    /// and scratch vectors keep their buffers (widths are re-pinned —
    /// an errored run can abandon a placeholder in a scratch slot),
    /// watcher lists are rebuilt with their capacity, queues are cleared.
    fn reset(&mut self, cd: &CompiledDesign) {
        let design = cd.design();
        for (slot, sig) in self.values.iter_mut().zip(design.signals.iter()) {
            debug_assert_eq!(slot.width(), sig.width.max(1));
            slot.set_all_x();
        }
        for (slot, w) in self.scratch.iter_mut().zip(cd.reg_widths.iter()) {
            let w = (*w as usize).max(1);
            if slot.width() != w {
                *slot = LogicVec::zeros(w);
            }
        }
        self.time = 0;
        for p in &mut self.procs {
            p.pc = 0;
            p.status = ProcStatus::Ready;
        }
        for ws in &mut self.sig_watchers {
            ws.clear();
        }
        for (i, a) in design.assigns.iter().enumerate() {
            for s in &a.reads {
                self.sig_watchers[s.0 as usize].push(Watcher::Assign(i));
            }
        }
        self.active.clear();
        self.nba.clear();
        self.nba_scratch.clear();
        self.timed.clear();
        self.seq = 0;
        self.lines.clear();
        self.finished = false;
        self.steps = 0;
        self.events = 0;
        self.nba_commits = 0;
    }

    /// Fails the run if the optional wall-clock deadline has passed.
    /// Called at a coarse cadence (every 4096 executed instructions and
    /// once per simulated time step) so the `Instant::now()` cost stays
    /// off the hot path when no deadline is set.
    fn check_deadline(&self) -> Result<(), SimError> {
        match self.limits.deadline {
            Some(d) if std::time::Instant::now() >= d => Err(SimError::DeadlineExceeded),
            _ => Ok(()),
        }
    }

    fn run(&mut self, cd: &CompiledDesign, mode: ExecMode) -> Result<SimOutput, SimError> {
        // Time zero: all continuous assignments evaluate once, every
        // process starts.
        for i in 0..cd.design().assigns.len() {
            self.active.push_back(Activation::Assign(i));
        }
        for i in 0..cd.design().processes.len() {
            self.active.push_back(Activation::Process(i));
        }
        self.settle(cd, mode)?;
        while !self.finished {
            let Some(std::cmp::Reverse((t, _, proc))) = self.timed.pop() else {
                break;
            };
            if t > self.limits.max_time {
                break;
            }
            if self.limits.deadline.is_some() {
                self.check_deadline()?;
            }
            self.time = t;
            self.procs[proc].status = ProcStatus::Ready;
            self.active.push_back(Activation::Process(proc));
            // Pull in everything else scheduled for the same instant.
            while let Some(std::cmp::Reverse((t2, _, _))) = self.timed.peek() {
                if *t2 != t {
                    break;
                }
                let Some(std::cmp::Reverse((_, _, p2))) = self.timed.pop() else {
                    break;
                };
                self.procs[p2].status = ProcStatus::Ready;
                self.active.push_back(Activation::Process(p2));
            }
            self.settle(cd, mode)?;
        }
        Ok(SimOutput {
            lines: std::mem::take(&mut self.lines),
            end_time: self.time,
            finished: self.finished,
        })
    }

    /// Runs the active/NBA delta loop at the current time.
    fn settle(&mut self, cd: &CompiledDesign, mode: ExecMode) -> Result<(), SimError> {
        let design = cd.design();
        let mut deltas = 0usize;
        // Oscillation through continuous assignments alone never touches
        // the NBA queue, so the activation count itself must be bounded.
        let mut activations = 0usize;
        let activation_budget = self
            .limits
            .max_deltas
            .saturating_mul(design.assigns.len() + design.processes.len() + 1);
        loop {
            while let Some(act) = self.active.pop_front() {
                if self.finished {
                    return Ok(());
                }
                activations += 1;
                self.events += 1;
                if activations > activation_budget {
                    return Err(SimError::DeltaOverflow { time: self.time });
                }
                match (act, mode) {
                    (Activation::Assign(i), ExecMode::Bytecode) => self.eval_assign(cd, i)?,
                    (Activation::Assign(i), ExecMode::TreeWalk) => self.eval_assign_tree(cd, i)?,
                    (Activation::Process(i), ExecMode::Bytecode) => self.run_process(cd, i)?,
                    (Activation::Process(i), ExecMode::TreeWalk) => self.run_process_tree(cd, i)?,
                }
            }
            if self.nba.is_empty() {
                return Ok(());
            }
            deltas += 1;
            if deltas > self.limits.max_deltas {
                return Err(SimError::DeltaOverflow { time: self.time });
            }
            std::mem::swap(&mut self.nba, &mut self.nba_scratch);
            self.nba_commits += self.nba_scratch.len() as u64;
            for i in 0..self.nba_scratch.len() {
                let (sig, lo, value) = std::mem::replace(
                    &mut self.nba_scratch[i],
                    (SignalId(0), 0, LogicVec::zeros(1)),
                );
                self.commit_bits(sig, lo, &value);
            }
            self.nba_scratch.clear();
        }
    }

    // ---- bytecode execution ----

    /// Runs expression unit `id` and returns its output register index.
    /// The borrow-split here is the core of the zero-clone design: the
    /// bytecode lives in `cd`, the registers and signal values in `self`,
    /// so execution needs no cloning and no interior mutability.
    fn exec(&mut self, cd: &CompiledDesign, id: ExprId) -> usize {
        exec_unit(cd, id, &mut self.scratch, &self.values, self.time);
        cd.out_reg(id)
    }

    /// Moves an evaluated value out of its scratch register (swapping in
    /// a 1-bit placeholder) so the write walk can borrow `self` mutably;
    /// [`SimState::untake`] restores it afterwards, keeping the register
    /// file's preallocated widths intact.
    fn take(&mut self, reg: usize) -> LogicVec {
        std::mem::replace(&mut self.scratch[reg], LogicVec::zeros(1))
    }

    fn untake(&mut self, reg: usize, value: LogicVec) {
        self.scratch[reg] = value;
    }

    fn eval_assign(&mut self, cd: &CompiledDesign, i: usize) -> Result<(), SimError> {
        let a = &cd.assigns[i];
        let out = self.exec(cd, a.rhs);
        let value = self.take(out);
        self.write_lvalue(cd, &a.lhs, &value)?;
        self.untake(out, value);
        Ok(())
    }

    fn run_process(&mut self, cd: &CompiledDesign, i: usize) -> Result<(), SimError> {
        loop {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(SimError::EventBudgetExhausted);
            }
            if self.steps & 0xFFF == 0 {
                self.check_deadline()?;
            }
            let code = &cd.processes[i].code;
            let pc = self.procs[i].pc;
            let Some(instr) = code.get(pc) else {
                self.procs[i].status = ProcStatus::Done;
                return Ok(());
            };
            match instr {
                CInstr::Assign { lhs, rhs } => {
                    let out = self.exec(cd, *rhs);
                    let value = self.take(out);
                    self.write_lvalue(cd, lhs, &value)?;
                    self.untake(out, value);
                    self.procs[i].pc = pc + 1;
                }
                CInstr::NbAssign { lhs, rhs } => {
                    let out = self.exec(cd, *rhs);
                    let value = self.take(out);
                    self.schedule_nba(cd, lhs, &value)?;
                    self.untake(out, value);
                    self.procs[i].pc = pc + 1;
                }
                CInstr::JumpIfFalse { cond, target } => {
                    let out = self.exec(cd, *cond);
                    let t = self.scratch[out].truthy();
                    self.procs[i].pc = if t == Bit::One { pc + 1 } else { *target };
                }
                CInstr::Jump(target) => {
                    self.procs[i].pc = *target;
                }
                CInstr::CaseJump {
                    sel,
                    kind,
                    arms,
                    default,
                } => {
                    let sel_reg = self.exec(cd, *sel);
                    let mut target = *default;
                    'arms: for (labels, t) in arms {
                        for l in labels {
                            let l_reg = self.exec(cd, *l);
                            let selv = &self.scratch[sel_reg];
                            let lv = &self.scratch[l_reg];
                            let hit = match kind {
                                crate::ast::CaseKind::Case => selv.eq_case(lv) == Bit::One,
                                crate::ast::CaseKind::Casez => selv.casez_match(lv),
                                crate::ast::CaseKind::Casex => selv.casex_match(lv),
                            };
                            if hit {
                                target = *t;
                                break 'arms;
                            }
                        }
                    }
                    self.procs[i].pc = target;
                }
                CInstr::Delay(d) => {
                    self.procs[i].pc = pc + 1;
                    self.procs[i].status = ProcStatus::Waiting;
                    self.seq += 1;
                    self.timed
                        .push(std::cmp::Reverse((self.time + d, self.seq, i)));
                    return Ok(());
                }
                CInstr::WaitEvent(edges) => {
                    self.procs[i].pc = pc + 1;
                    self.procs[i].status = ProcStatus::Waiting;
                    for (edge, sig) in edges {
                        self.sig_watchers[sig.0 as usize].push(Watcher::Process {
                            idx: i,
                            edge: *edge,
                        });
                    }
                    return Ok(());
                }
                CInstr::SysCall { name, args } => {
                    if is_display(name) {
                        let line = self.render(cd, args, display_skip(name));
                        self.lines.push(line);
                    }
                    self.syscall_effect(name);
                    if self.finished {
                        return Ok(());
                    }
                    self.procs[i].pc = pc + 1;
                }
                CInstr::Halt => {
                    self.procs[i].status = ProcStatus::Done;
                    return Ok(());
                }
            }
        }
    }

    fn render(&mut self, cd: &CompiledDesign, args: &[CSysArg], skip: usize) -> String {
        let args = &args[skip.min(args.len())..];
        let (fmt, rest): (&str, &[CSysArg]) = match args.first() {
            Some(CSysArg::Str(s)) => (s, &args[1..]),
            _ => {
                // No format string: default-format every argument.
                let mut parts = Vec::new();
                for a in args {
                    if let CSysArg::Expr(e) = a {
                        let out = self.exec(cd, *e);
                        parts.push(self.scratch[out].to_decimal_string());
                    }
                }
                return parts.join(" ");
            }
        };
        let mut values: Vec<LogicVec> = Vec::with_capacity(rest.len());
        for a in rest {
            if let CSysArg::Expr(e) = a {
                let out = self.exec(cd, *e);
                values.push(self.scratch[out].clone());
            }
        }
        format_display(fmt, &values, self.time)
    }

    /// Immediately writes `value` through an lvalue (blocking semantics).
    /// Dynamic indices are evaluated lazily, in target order, exactly as
    /// the tree-walker does.
    fn write_lvalue(
        &mut self,
        cd: &CompiledDesign,
        lhs: &CLValue,
        value: &LogicVec,
    ) -> Result<(), SimError> {
        match lhs {
            CLValue::Sig(s) => {
                self.commit_bits(*s, 0, value);
                Ok(())
            }
            CLValue::Part(s, lo, w) => {
                self.commit_bits(*s, *lo, &value.slice(0, *w));
                Ok(())
            }
            CLValue::Bit(s, idx) => {
                let out = self.exec(cd, *idx);
                if let Some(i) = self.scratch[out].to_u64() {
                    let width = cd.design().signal(*s).width;
                    if (i as usize) < width {
                        self.commit_bits(*s, i as usize, &value.slice(0, 1));
                    }
                }
                Ok(())
            }
            CLValue::IndexedPart(s, base, w) => {
                let out = self.exec(cd, *base);
                if let Some(lo) = self.scratch[out].to_u64() {
                    self.commit_bits(*s, lo as usize, &value.slice(0, *w));
                }
                Ok(())
            }
            CLValue::Concat(parts) => {
                // MSB-first: the last part takes the low bits.
                let mut lo = 0usize;
                for part in parts.iter().rev() {
                    let w = part.width(cd.design());
                    let chunk = value.slice(lo, w);
                    self.write_lvalue(cd, part, &chunk)?;
                    lo += w;
                }
                Ok(())
            }
        }
    }

    /// Schedules an NBA update.
    fn schedule_nba(
        &mut self,
        cd: &CompiledDesign,
        lhs: &CLValue,
        value: &LogicVec,
    ) -> Result<(), SimError> {
        match lhs {
            CLValue::Sig(s) => {
                self.nba.push((*s, 0, value.clone()));
                Ok(())
            }
            CLValue::Part(s, lo, w) => {
                self.nba.push((*s, *lo, value.slice(0, *w)));
                Ok(())
            }
            CLValue::Bit(s, idx) => {
                let out = self.exec(cd, *idx);
                if let Some(i) = self.scratch[out].to_u64() {
                    let width = cd.design().signal(*s).width;
                    if (i as usize) < width {
                        self.nba.push((*s, i as usize, value.slice(0, 1)));
                    }
                }
                Ok(())
            }
            CLValue::IndexedPart(s, base, w) => {
                let out = self.exec(cd, *base);
                if let Some(lo) = self.scratch[out].to_u64() {
                    self.nba.push((*s, lo as usize, value.slice(0, *w)));
                }
                Ok(())
            }
            CLValue::Concat(parts) => {
                let mut lo = 0usize;
                for part in parts.iter().rev() {
                    let w = part.width(cd.design());
                    let chunk = value.slice(lo, w);
                    self.schedule_nba(cd, part, &chunk)?;
                    lo += w;
                }
                Ok(())
            }
        }
    }

    // ---- tree-walk execution (semantic reference) ----

    fn eval_assign_tree(&mut self, cd: &CompiledDesign, i: usize) -> Result<(), SimError> {
        let a = &cd.design().assigns[i];
        let lhs_width = a.lhs.width(cd.design());
        let value = {
            let store = ValueStore {
                values: &self.values,
                time: self.time,
            };
            eval(&a.rhs, lhs_width.max(a.rhs.width), &store).resize(lhs_width, a.rhs.signed)
        };
        self.write_lvalue_tree(cd, &a.lhs, value)
    }

    fn run_process_tree(&mut self, cd: &CompiledDesign, i: usize) -> Result<(), SimError> {
        let design = cd.design();
        loop {
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(SimError::EventBudgetExhausted);
            }
            if self.steps & 0xFFF == 0 {
                self.check_deadline()?;
            }
            let pc = self.procs[i].pc;
            let Some(instr) = design.processes[i].code.get(pc) else {
                self.procs[i].status = ProcStatus::Done;
                return Ok(());
            };
            match instr {
                Instr::Assign(lhs, rhs) => {
                    let lhs_width = lhs.width(design);
                    let v = {
                        let store = ValueStore {
                            values: &self.values,
                            time: self.time,
                        };
                        eval(rhs, lhs_width.max(rhs.width), &store).resize(lhs_width, rhs.signed)
                    };
                    self.write_lvalue_tree(cd, lhs, v)?;
                    self.procs[i].pc = pc + 1;
                }
                Instr::NbAssign(lhs, rhs) => {
                    let lhs_width = lhs.width(design);
                    let v = {
                        let store = ValueStore {
                            values: &self.values,
                            time: self.time,
                        };
                        eval(rhs, lhs_width.max(rhs.width), &store).resize(lhs_width, rhs.signed)
                    };
                    self.schedule_nba_tree(cd, lhs, v)?;
                    self.procs[i].pc = pc + 1;
                }
                Instr::JumpIfFalse(cond, target) => {
                    let store = ValueStore {
                        values: &self.values,
                        time: self.time,
                    };
                    let t = eval(cond, cond.width, &store).truthy();
                    self.procs[i].pc = if t == Bit::One { pc + 1 } else { *target };
                }
                Instr::Jump(target) => {
                    self.procs[i].pc = *target;
                }
                Instr::CaseJump {
                    expr,
                    kind,
                    arms,
                    default,
                } => {
                    let store = ValueStore {
                        values: &self.values,
                        time: self.time,
                    };
                    let sel_w = arms
                        .iter()
                        .flat_map(|(ls, _)| ls.iter().map(|l| l.width))
                        .fold(expr.width, usize::max);
                    let sel = eval(expr, sel_w, &store);
                    let mut target = *default;
                    'arms: for (labels, t) in arms {
                        for l in labels {
                            let lv = eval(l, sel_w, &store);
                            let hit = match kind {
                                crate::ast::CaseKind::Case => sel.eq_case(&lv) == Bit::One,
                                crate::ast::CaseKind::Casez => sel.casez_match(&lv),
                                crate::ast::CaseKind::Casex => sel.casex_match(&lv),
                            };
                            if hit {
                                target = *t;
                                break 'arms;
                            }
                        }
                    }
                    self.procs[i].pc = target;
                }
                Instr::Delay(d) => {
                    self.procs[i].pc = pc + 1;
                    self.procs[i].status = ProcStatus::Waiting;
                    self.seq += 1;
                    self.timed
                        .push(std::cmp::Reverse((self.time + d, self.seq, i)));
                    return Ok(());
                }
                Instr::WaitEvent(edges) => {
                    self.procs[i].pc = pc + 1;
                    self.procs[i].status = ProcStatus::Waiting;
                    for (edge, sig) in edges {
                        self.sig_watchers[sig.0 as usize].push(Watcher::Process {
                            idx: i,
                            edge: *edge,
                        });
                    }
                    return Ok(());
                }
                Instr::SysCall { name, args } => {
                    if is_display(name) {
                        let line = self.render_tree(args, display_skip(name));
                        self.lines.push(line);
                    }
                    self.syscall_effect(name);
                    if self.finished {
                        return Ok(());
                    }
                    self.procs[i].pc = pc + 1;
                }
                Instr::Halt => {
                    self.procs[i].status = ProcStatus::Done;
                    return Ok(());
                }
            }
        }
    }

    fn render_tree(&self, args: &[RSysArg], skip: usize) -> String {
        let store = ValueStore {
            values: &self.values,
            time: self.time,
        };
        let args = &args[skip.min(args.len())..];
        let (fmt, rest): (&str, &[RSysArg]) = match args.first() {
            Some(RSysArg::Str(s)) => (s, &args[1..]),
            _ => {
                // No format string: default-format every argument.
                let mut parts = Vec::new();
                for a in args {
                    if let RSysArg::Expr(e) = a {
                        parts.push(eval(e, e.width, &store).to_decimal_string());
                    }
                }
                return parts.join(" ");
            }
        };
        let values: Vec<LogicVec> = rest
            .iter()
            .filter_map(|a| match a {
                RSysArg::Expr(e) => Some(eval(e, e.width, &store)),
                RSysArg::Str(_) => None,
            })
            .collect();
        format_display(fmt, &values, self.time)
    }

    fn write_lvalue_tree(
        &mut self,
        cd: &CompiledDesign,
        lhs: &RLValue,
        value: LogicVec,
    ) -> Result<(), SimError> {
        match lhs {
            RLValue::Sig(s) => {
                self.commit_bits(*s, 0, &value);
                Ok(())
            }
            RLValue::Part(s, lo, w) => {
                self.commit_bits(*s, *lo, &value.slice(0, *w));
                Ok(())
            }
            RLValue::Bit(s, idx) => {
                let i = {
                    let store = ValueStore {
                        values: &self.values,
                        time: self.time,
                    };
                    eval(idx, idx.width, &store)
                };
                if let Some(i) = i.to_u64() {
                    let width = cd.design().signal(*s).width;
                    if (i as usize) < width {
                        self.commit_bits(*s, i as usize, &value.slice(0, 1));
                    }
                }
                Ok(())
            }
            RLValue::IndexedPart(s, base, w) => {
                let b = {
                    let store = ValueStore {
                        values: &self.values,
                        time: self.time,
                    };
                    eval(base, base.width, &store)
                };
                if let Some(lo) = b.to_u64() {
                    self.commit_bits(*s, lo as usize, &value.slice(0, *w));
                }
                Ok(())
            }
            RLValue::Concat(parts) => {
                // MSB-first: the last part takes the low bits.
                let mut lo = 0usize;
                for part in parts.iter().rev() {
                    let w = part.width(cd.design());
                    let chunk = value.slice(lo, w);
                    self.write_lvalue_tree(cd, part, chunk)?;
                    lo += w;
                }
                Ok(())
            }
        }
    }

    fn schedule_nba_tree(
        &mut self,
        cd: &CompiledDesign,
        lhs: &RLValue,
        value: LogicVec,
    ) -> Result<(), SimError> {
        match lhs {
            RLValue::Sig(s) => {
                self.nba.push((*s, 0, value));
                Ok(())
            }
            RLValue::Part(s, lo, w) => {
                self.nba.push((*s, *lo, value.slice(0, *w)));
                Ok(())
            }
            RLValue::Bit(s, idx) => {
                let i = {
                    let store = ValueStore {
                        values: &self.values,
                        time: self.time,
                    };
                    eval(idx, idx.width, &store)
                };
                if let Some(i) = i.to_u64() {
                    let width = cd.design().signal(*s).width;
                    if (i as usize) < width {
                        self.nba.push((*s, i as usize, value.slice(0, 1)));
                    }
                }
                Ok(())
            }
            RLValue::IndexedPart(s, base, w) => {
                let b = {
                    let store = ValueStore {
                        values: &self.values,
                        time: self.time,
                    };
                    eval(base, base.width, &store)
                };
                if let Some(lo) = b.to_u64() {
                    self.nba.push((*s, lo as usize, value.slice(0, *w)));
                }
                Ok(())
            }
            RLValue::Concat(parts) => {
                let mut lo = 0usize;
                for part in parts.iter().rev() {
                    let w = part.width(cd.design());
                    let chunk = value.slice(lo, w);
                    self.schedule_nba_tree(cd, part, chunk)?;
                    lo += w;
                }
                Ok(())
            }
        }
    }

    // ---- shared machinery ----

    /// Applies a system task's scheduler effect (display rendering is
    /// handled by the callers, which own the mode-specific argument
    /// evaluation).
    fn syscall_effect(&mut self, name: &str) {
        match name {
            "$finish" | "$stop" => {
                self.finished = true;
            }
            "$monitor" | "$fopen" | "$fclose" | "$dumpfile" | "$dumpvars" => {
                // Accepted but inert: generated testbenches sometimes emit
                // these; Icarus would honour them, we do not need to.
            }
            _ => {}
        }
    }

    /// Writes `bits` into `sig` starting at `lo`, firing watchers when the
    /// stored value actually changes. In place — no clone of the stored
    /// value, no allocation.
    fn commit_bits(&mut self, sig: SignalId, lo: usize, bits: &LogicVec) {
        let slot = &mut self.values[sig.0 as usize];
        if lo >= slot.width() {
            return;
        }
        let old_lsb = slot.bit(0);
        if !slot.write_range(lo, bits, bits.width()) {
            return;
        }
        let new_lsb = slot.bit(0);

        // Wake watchers. Edge-qualified watchers look at bit 0 (clocks and
        // resets are 1-bit in practice). The list is compacted in place —
        // taken out for the duration of the walk (wakes mutate other
        // state), then put back with its allocation intact.
        let mut watchers = std::mem::take(&mut self.sig_watchers[sig.0 as usize]);
        let mut kept = 0usize;
        for i in 0..watchers.len() {
            let w = watchers[i];
            let keep = match w {
                Watcher::Assign(i) => {
                    self.active.push_back(Activation::Assign(i));
                    true
                }
                Watcher::Process { idx, edge } => {
                    let fire = match edge {
                        crate::ast::Edge::Any => true,
                        crate::ast::Edge::Pos => old_lsb != Bit::One && new_lsb == Bit::One,
                        crate::ast::Edge::Neg => old_lsb != Bit::Zero && new_lsb == Bit::Zero,
                    };
                    if fire && self.procs[idx].status == ProcStatus::Waiting {
                        self.procs[idx].status = ProcStatus::Ready;
                        self.active.push_back(Activation::Process(idx));
                        self.remove_process_watchers(idx, sig);
                        false
                    } else {
                        // A firing watcher whose process already woke via
                        // another signal this delta is stale either way.
                        !fire
                    }
                }
            };
            if keep {
                watchers[kept] = w;
                kept += 1;
            }
        }
        watchers.truncate(kept);
        self.sig_watchers[sig.0 as usize] = watchers;
    }

    /// Removes the remaining one-shot watchers of `proc` from every other
    /// signal (it woke via `except`, whose list is being rebuilt by the
    /// caller).
    fn remove_process_watchers(&mut self, proc: usize, except: SignalId) {
        for (s, ws) in self.sig_watchers.iter_mut().enumerate() {
            if s == except.0 as usize {
                continue;
            }
            ws.retain(|w| !matches!(w, Watcher::Process { idx, .. } if *idx == proc));
        }
    }
}

/// Display-family system tasks that render a line.
fn is_display(name: &str) -> bool {
    matches!(name, "$display" | "$write" | "$fdisplay" | "$fwrite")
}

/// `$fdisplay`/`$fwrite` take a file descriptor first; we capture
/// everything into one stream.
fn display_skip(name: &str) -> usize {
    match name {
        "$fdisplay" | "$fwrite" => 1,
        _ => 0,
    }
}

/// Convenience: parse, elaborate and simulate `src` with `top` as the root.
///
/// # Errors
///
/// Any [`crate::error::VerilogError`] from the front end or the run.
pub fn run_source(src: &str, top: &str) -> Result<SimOutput, crate::error::VerilogError> {
    let file = crate::parser::parse(src)?;
    let design = crate::elaborate::elaborate(&file, top)?;
    Ok(Simulator::new(&design).run()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, top: &str) -> SimOutput {
        run_source(src, top).expect("simulation ok")
    }

    /// Runs `src` in both modes and checks they agree before returning
    /// the bytecode output — every legacy simulator test doubles as a
    /// tree-vs-bytecode differential check.
    fn run_both(src: &str, top: &str) -> SimOutput {
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, top).expect("elab");
        let compiled = CompiledDesign::new(design);
        let byte = Simulator::from_compiled(&compiled).run().expect("bytecode");
        let tree = Simulator::from_compiled(&compiled)
            .with_mode(ExecMode::TreeWalk)
            .run()
            .expect("tree");
        assert_eq!(byte.lines, tree.lines, "modes disagree on output");
        assert_eq!(byte.end_time, tree.end_time, "modes disagree on time");
        assert_eq!(byte.finished, tree.finished);
        byte
    }

    #[test]
    fn combinational_assign() {
        let out = run_both(
            "module tb;\nreg [3:0] a, b;\nwire [3:0] y;\nassign y = a + b;\ninitial begin\na = 4'd3; b = 4'd4;\n#1 $display(\"y=%0d\", y);\na = 4'd9;\n#1 $display(\"y=%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["y=7", "y=13"]);
        assert!(out.finished);
    }

    #[test]
    fn clocked_register() {
        let out = run_both(
            "module tb;\nreg clk, d;\nreg q;\nalways @(posedge clk) q <= d;\ninitial begin\nclk = 0; d = 1;\n#1 $display(\"q=%b\", q);\n#4 clk = 1;\n#1 $display(\"q=%b\", q);\nd = 0;\n#4 clk = 0;\n#5 clk = 1;\n#1 $display(\"q=%b\", q);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["q=x", "q=1", "q=0"]);
    }

    #[test]
    fn nonblocking_swap() {
        let out = run_both(
            "module tb;\nreg clk;\nreg [3:0] a, b;\nalways @(posedge clk) begin a <= b; b <= a; end\ninitial begin\nclk = 0; a = 4'd1; b = 4'd2;\n#5 clk = 1;\n#1 $display(\"a=%0d b=%0d\", a, b);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["a=2 b=1"]);
    }

    #[test]
    fn clock_generator_and_counter() {
        let out = run_both(
            "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg [7:0] n = 0;\nalways @(posedge clk) n <= n + 8'd1;\ninitial begin\n#52 $display(\"n=%0d\", n);\n$finish;\nend\nendmodule",
            "tb",
        );
        // Posedges at 5,15,25,35,45 -> n == 5 at t=52.
        assert_eq!(out.lines, vec!["n=5"]);
    }

    #[test]
    fn dut_instance() {
        let out = run_both(
            "module add1(input [3:0] a, output [3:0] y);\nassign y = a + 4'd1;\nendmodule\nmodule tb;\nreg [3:0] a;\nwire [3:0] y;\nadd1 dut(.a(a), .y(y));\ninitial begin\na = 4'd7;\n#1 $display(\"y=%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["y=8"]);
    }

    #[test]
    fn always_star_mux() {
        let out = run_both(
            "module tb;\nreg s;\nreg [3:0] a, b;\nreg [3:0] y;\nalways @(*) begin if (s) y = a; else y = b; end\ninitial begin\na = 4'd10; b = 4'd5; s = 0;\n#1 $display(\"y=%0d\", y);\ns = 1;\n#1 $display(\"y=%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["y=5", "y=10"]);
    }

    #[test]
    fn combinational_loop_detected() {
        let r = run_source(
            "module tb;\nwire a, b;\nassign a = ~b;\nassign b = ~a;\ninitial #1 $finish;\nendmodule",
            "tb",
        );
        // a and b start x; ~x = x, so this particular loop actually
        // settles. Make a real oscillator with known values instead.
        assert!(r.is_ok());
        // A ring that escapes the x fixpoint via ===, then oscillates.
        let r2 = run_source(
            "module tb;\nwire a, b;\nassign a = (b === 1'bx) ? 1'b0 : ~b;\nassign b = a;\ninitial #1 $finish;\nendmodule",
            "tb",
        );
        match r2 {
            Err(crate::error::VerilogError::Sim(SimError::DeltaOverflow { .. })) => {}
            other => panic!("expected delta overflow, got {other:?}"),
        }
    }

    #[test]
    fn zero_delay_runaway_caught_in_both_modes() {
        let src =
            "module tb;\nreg x;\ninitial begin x = 0; forever begin #0; x = ~x; end end\nendmodule";
        // #0 delays still advance the queue at the same time; the step
        // budget eventually trips.
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, "tb").expect("elab");
        let compiled = CompiledDesign::new(design);
        let limits = SimLimits {
            max_steps: 10_000,
            ..SimLimits::default()
        };
        for mode in [ExecMode::Bytecode, ExecMode::TreeWalk] {
            let r = Simulator::from_compiled_with_limits(&compiled, limits)
                .with_mode(mode)
                .run();
            assert!(matches!(r, Err(SimError::EventBudgetExhausted)), "{mode:?}");
        }
    }

    #[test]
    fn for_loop_popcount() {
        let out = run_both(
            "module tb;\nreg [7:0] v;\nreg [3:0] n;\ninteger i;\ninitial begin\nv = 8'b1011_0110;\nn = 0;\nfor (i = 0; i < 8; i = i + 1) if (v[i]) n = n + 1;\n$display(\"n=%0d\", n);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["n=5"]);
    }

    #[test]
    fn case_statement() {
        let out = run_both(
            "module tb;\nreg [1:0] s;\nreg [3:0] y;\nalways @(*) begin\ncase (s)\n2'd0: y = 4'd1;\n2'd1: y = 4'd2;\ndefault: y = 4'd15;\nendcase\nend\ninitial begin\ns = 2'd0; #1 $display(\"%0d\", y);\ns = 2'd1; #1 $display(\"%0d\", y);\ns = 2'd3; #1 $display(\"%0d\", y);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["1", "2", "15"]);
    }

    #[test]
    fn event_wait_in_initial() {
        let out = run_both(
            "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\ninitial begin\n@(posedge clk);\n$display(\"t=%0d\", $time);\n@(posedge clk);\n$display(\"t=%0d\", $time);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["t=5", "t=15"]);
    }

    #[test]
    fn part_select_write() {
        let out = run_both(
            "module tb;\nreg [7:0] v;\ninitial begin\nv = 8'h00;\nv[3:0] = 4'hf;\nv[6] = 1'b1;\n$display(\"%h\", v);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["4f"]);
    }

    #[test]
    fn concat_lvalue() {
        let out = run_both(
            "module tb;\nreg [3:0] hi, lo;\ninitial begin\n{hi, lo} = 8'hA5;\n$display(\"%h %h\", hi, lo);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["a 5"]);
    }

    #[test]
    fn max_time_stops_unfinished_run() {
        let src = "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nendmodule";
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, "tb").expect("elab");
        let limits = SimLimits {
            max_time: 100,
            ..SimLimits::default()
        };
        let out = Simulator::with_limits(&design, limits).run().expect("run");
        assert!(!out.finished);
        assert!(out.end_time <= 105);
    }

    #[test]
    fn sequential_sr_with_sync_reset() {
        let out = run_both(
            "module tb;\nreg clk = 0, rst;\nalways #5 clk = ~clk;\nreg [3:0] q;\nalways @(posedge clk) begin\nif (rst) q <= 4'd0; else q <= q + 4'd1;\nend\ninitial begin\nrst = 1;\n#12 rst = 0;\n#40 $display(\"q=%0d\", q);\n$finish;\nend\nendmodule",
            "tb",
        );
        // Posedges: 5 (rst), 15,25,35,45 counting -> q=4 at t=52.
        assert_eq!(out.lines, vec!["q=4"]);
    }

    #[test]
    fn wide_arithmetic_and_selects() {
        let out = run_both(
            "module tb;\nreg [99:0] a, b;\nwire [99:0] s;\nassign s = a + b;\ninitial begin\na = 100'd1;\nb = 100'd0;\na = a << 64;\nb = 100'd5;\n#1 $display(\"%0d %0d\", s[99:60], s[7:0]);\n$display(\"%b\", s[64]);\n$finish;\nend\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["16 5", "1"]);
    }

    #[test]
    fn hot_path_has_no_per_step_clones() {
        // The pre-bytecode simulator deep-cloned every executed `Instr`
        // and the continuous-assign target. Both borrow now; this source
        // scan keeps the regression from sneaking back in either
        // execution mode. (The needles are assembled at runtime so the
        // scan does not match its own source.)
        let src = include_str!("sim.rs");
        for needle in [
            format!("instr{}", ".clone"),
            format!("lhs{}", ".clone"),
            format!("code{}", ".clone"),
        ] {
            assert!(
                src.matches(&needle).count() == 0,
                "per-step clone `{needle}` reintroduced in the simulator hot path"
            );
        }
    }

    #[test]
    fn reset_replays_identically() {
        // A reset simulator must be observationally identical to a fresh
        // one — including after runs that *errored* (scratch placeholders
        // abandoned mid-write) or hit limits. Sequential design with NBA
        // traffic, event waits and timed activity exercises every queue.
        let src = "module tb;\nreg clk = 0, rst;\nalways #5 clk = ~clk;\nreg [7:0] q;\nwire [7:0] y;\nassign y = q ^ 8'h0f;\nalways @(posedge clk) begin\nif (rst) q <= 8'd0; else q <= q + 8'd3;\nend\ninitial begin\nrst = 1;\n#12 rst = 0;\n#40 $display(\"q=%0d y=%0d t=%0d\", q, y, $time);\n$finish;\nend\nendmodule";
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, "tb").expect("elab");
        let compiled = std::sync::Arc::new(CompiledDesign::new(design));

        let reference = Simulator::from_compiled(&compiled).run().expect("fresh");
        let mut sim = Simulator::from_shared(Arc::clone(&compiled));
        assert!(sim.shares(&compiled));
        for round in 0..3 {
            let out = sim.run().expect("session run");
            assert_eq!(out.lines, reference.lines, "round {round}");
            assert_eq!(out.end_time, reference.end_time, "round {round}");
            assert_eq!(out.finished, reference.finished, "round {round}");
            sim.reset();
        }

        // Interleave an errored run (step budget) and confirm reset still
        // restores a clean replay afterwards.
        sim.set_limits(SimLimits {
            max_steps: 10,
            ..SimLimits::default()
        });
        assert!(sim.run().is_err(), "tiny budget must trip");
        sim.set_limits(SimLimits::default());
        sim.reset();
        let after_err = sim.run().expect("post-error run");
        assert_eq!(after_err.lines, reference.lines);
        assert_eq!(after_err.end_time, reference.end_time);
    }

    #[test]
    fn run_after_completion_without_reset_is_inert() {
        let src = "module tb;\ninitial begin $display(\"once\"); $finish; end\nendmodule";
        let file = crate::parser::parse(src).expect("parse");
        let design = crate::elaborate::elaborate(&file, "tb").expect("elab");
        let compiled = std::sync::Arc::new(CompiledDesign::new(design));
        let mut sim = Simulator::from_shared(Arc::clone(&compiled));
        assert_eq!(sim.run().expect("first").lines, vec!["once"]);
        // No reset: the finished flag stands, nothing re-executes.
        assert!(sim.run().expect("second").lines.is_empty());
        sim.reset();
        assert_eq!(sim.run().expect("third").lines, vec!["once"]);
    }

    #[test]
    fn simulator_run_keeps_old_api_shape() {
        let out = run(
            "module tb;\ninitial begin $display(\"ok\"); $finish; end\nendmodule",
            "tb",
        );
        assert_eq!(out.lines, vec!["ok"]);
    }
}
