//! Verilog `$display`-style format rendering.

use crate::logic::LogicVec;

/// Renders `fmt` with `args`, supporting the directives used by generated
/// testbenches: `%d`, `%0d`, `%b`, `%h`/`%x`, `%0t`/`%t`, `%c`, `%%`.
///
/// `%d` pads to the natural decimal width of the operand; `%0d` does not.
/// Extra arguments are appended space-separated (as Icarus does); missing
/// arguments render as `<missing>`.
pub fn format_display(fmt: &str, args: &[LogicVec], time: u64) -> String {
    let mut out = String::with_capacity(fmt.len() + args.len() * 8);
    let mut args_iter = args.iter();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let mut zero_flag = false;
        let mut width_digits = String::new();
        while let Some(&d) = chars.peek() {
            if d == '0' && width_digits.is_empty() {
                zero_flag = true;
                chars.next();
            } else if d.is_ascii_digit() {
                width_digits.push(d);
                chars.next();
            } else {
                break;
            }
        }
        let Some(spec) = chars.next() else {
            out.push('%');
            break;
        };
        match spec {
            '%' => out.push('%'),
            'd' | 'D' => match args_iter.next() {
                None => out.push_str("<missing>"),
                Some(v) => {
                    let s = v.to_decimal_string();
                    if zero_flag && width_digits.is_empty() {
                        out.push_str(&s);
                    } else {
                        // %d pads to the max decimal width of the operand.
                        let natural = max_decimal_width(v.width());
                        let w = width_digits.parse::<usize>().unwrap_or(natural);
                        for _ in s.len()..w {
                            out.push(' ');
                        }
                        out.push_str(&s);
                    }
                }
            },
            'b' | 'B' => match args_iter.next() {
                None => out.push_str("<missing>"),
                Some(v) => out.push_str(&v.to_binary_string()),
            },
            'h' | 'H' | 'x' | 'X' => match args_iter.next() {
                None => out.push_str("<missing>"),
                Some(v) => out.push_str(&v.to_hex_string()),
            },
            't' | 'T' => {
                // Time directives consume an argument (typically $time).
                match args_iter.next() {
                    None => out.push_str(&time.to_string()),
                    Some(v) => out.push_str(&v.to_decimal_string()),
                }
            }
            'c' => match args_iter.next() {
                None => out.push_str("<missing>"),
                Some(v) => {
                    let byte = v.to_u64().map(|b| (b & 0xff) as u8).unwrap_or(b'?');
                    out.push(byte as char);
                }
            },
            's' => match args_iter.next() {
                None => out.push_str("<missing>"),
                Some(v) => out.push_str(&v.to_decimal_string()),
            },
            other => {
                out.push('%');
                out.push(other);
            }
        }
    }
    for rest in args_iter {
        out.push(' ');
        out.push_str(&rest.to_decimal_string());
    }
    out
}

/// The number of decimal digits needed for the largest value of `width` bits.
fn max_decimal_width(width: usize) -> usize {
    // ceil(width * log10(2)), computed without floating point drift.
    (width * 30103).div_ceil(100_000).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_directives() {
        let v = LogicVec::from_u64(8, 0xa5);
        let s = format_display("d=%0d b=%b h=%h", &[v.clone(), v.clone(), v], 0);
        assert_eq!(s, "d=165 b=10100101 h=a5");
    }

    #[test]
    fn percent_d_pads() {
        let v = LogicVec::from_u64(8, 7);
        assert_eq!(format_display("%d", &[v], 0), "  7");
    }

    #[test]
    fn unknown_values() {
        let v = LogicVec::filled_x(4);
        assert_eq!(
            format_display("%0d %b %h", &[v.clone(), v.clone(), v], 0),
            "x xxxx x"
        );
    }

    #[test]
    fn literal_percent_and_missing() {
        assert_eq!(
            format_display("100%% done %0d", &[], 0),
            "100% done <missing>"
        );
    }

    #[test]
    fn extra_args_appended() {
        let a = LogicVec::from_u64(4, 3);
        let b = LogicVec::from_u64(4, 9);
        assert_eq!(format_display("v=%0d", &[a, b], 0), "v=3 9");
    }

    #[test]
    fn time_directive() {
        let t = LogicVec::from_u64(64, 120);
        assert_eq!(format_display("t=%0t", &[t], 120), "t=120");
    }

    #[test]
    fn max_decimal_width_sane() {
        assert_eq!(max_decimal_width(1), 1);
        assert_eq!(max_decimal_width(8), 3);
        assert_eq!(max_decimal_width(16), 5);
        assert_eq!(max_decimal_width(64), 20);
    }
}
