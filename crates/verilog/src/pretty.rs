//! AST → Verilog source rendering.
//!
//! Mutated and generated artifacts are kept as source text (the same shape
//! an LLM would emit) and re-parsed by consumers, so the printer must
//! produce code the parser accepts; `tests::roundtrip` checks that.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole source file.
pub fn print_file(file: &SourceFile) -> String {
    let mut out = String::new();
    for m in &file.modules {
        out.push_str(&print_module(m));
        out.push('\n');
    }
    out
}

/// Renders one module.
pub fn print_module(m: &Module) -> String {
    let mut s = String::new();
    write!(s, "module {}", m.name).expect("write to string");
    if !m.port_order.is_empty() {
        s.push_str(" (\n");
        let decls: Vec<String> = m
            .port_order
            .iter()
            .map(|name| match m.ports.iter().find(|p| &p.name == name) {
                Some(p) => format!("    {}", print_port(p)),
                None => format!("    {name}"),
            })
            .collect();
        s.push_str(&decls.join(",\n"));
        s.push_str("\n)");
    }
    s.push_str(";\n");
    for item in &m.items {
        print_item(&mut s, item, 1);
    }
    s.push_str("endmodule\n");
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("    ");
    }
}

fn print_port(p: &PortDecl) -> String {
    let dir = match p.dir {
        Direction::Input => "input",
        Direction::Output => "output",
    };
    let net = match p.net {
        NetKind::Reg => " reg",
        NetKind::Wire | NetKind::Integer => "",
    };
    let signed = if p.signed { " signed" } else { "" };
    let range = p
        .range
        .map(|r| format!(" [{}:{}]", r.msb, r.lsb))
        .unwrap_or_default();
    format!("{dir}{net}{signed}{range} {}", p.name)
}

fn print_item(s: &mut String, item: &Item, level: usize) {
    match item {
        Item::Net(d) => {
            indent(s, level);
            let kind = match d.kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
                NetKind::Integer => "integer",
            };
            let signed = if d.signed && d.kind != NetKind::Integer {
                " signed"
            } else {
                ""
            };
            let range = if d.kind == NetKind::Integer {
                String::new()
            } else {
                d.range
                    .map(|r| format!(" [{}:{}]", r.msb, r.lsb))
                    .unwrap_or_default()
            };
            let names: Vec<String> = d
                .names
                .iter()
                .map(|(n, init)| match init {
                    None => n.clone(),
                    Some(e) => format!("{n} = {}", print_expr(e)),
                })
                .collect();
            let _ = writeln!(s, "{kind}{signed}{range} {};", names.join(", "));
        }
        Item::Param(p) => {
            indent(s, level);
            let kw = if p.local { "localparam" } else { "parameter" };
            let _ = writeln!(s, "{kw} {} = {};", p.name, print_expr(&p.value));
        }
        Item::Assign(a) => {
            indent(s, level);
            let _ = writeln!(
                s,
                "assign {} = {};",
                print_lvalue(&a.lhs),
                print_expr(&a.rhs)
            );
        }
        Item::Always(blk) => {
            indent(s, level);
            match &blk.event {
                None => s.push_str("always "),
                Some(EventControl::Star) => s.push_str("always @(*) "),
                Some(EventControl::List(list)) => {
                    let entries: Vec<String> = list
                        .iter()
                        .map(|e| {
                            let edge = match e.edge {
                                Edge::Pos => "posedge ",
                                Edge::Neg => "negedge ",
                                Edge::Any => "",
                            };
                            format!("{edge}{}", e.signal)
                        })
                        .collect();
                    let _ = write!(s, "always @({}) ", entries.join(" or "));
                }
            }
            print_stmt(s, &blk.body, level, false);
        }
        Item::Initial(body) => {
            indent(s, level);
            s.push_str("initial ");
            print_stmt(s, body, level, false);
        }
        Item::Instance(i) => {
            indent(s, level);
            let conns = match &i.conns {
                Connections::Ordered(exprs) => {
                    exprs.iter().map(print_expr).collect::<Vec<_>>().join(", ")
                }
                Connections::Named(named) => named
                    .iter()
                    .map(|(p, e)| match e {
                        Some(e) => format!(".{p}({})", print_expr(e)),
                        None => format!(".{p}()"),
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
            };
            let _ = writeln!(s, "{} {} ({conns});", i.module, i.name);
        }
    }
}

/// Renders a statement. `level` is the current indentation; when `inline`
/// the statement continues an existing line (after `#10 ` etc.).
fn print_stmt(s: &mut String, stmt: &Stmt, level: usize, inline: bool) {
    if inline {
        indent(s, level);
    }
    match stmt {
        Stmt::Block(stmts) => {
            s.push_str("begin\n");
            for st in stmts {
                print_stmt(s, st, level + 1, true);
            }
            indent(s, level);
            s.push_str("end\n");
        }
        Stmt::Blocking(lv, e) => {
            let _ = writeln!(s, "{} = {};", print_lvalue(lv), print_expr(e));
        }
        Stmt::NonBlocking(lv, e) => {
            let _ = writeln!(s, "{} <= {};", print_lvalue(lv), print_expr(e));
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            let _ = write!(s, "if ({}) ", print_expr(cond));
            print_stmt(s, then_stmt, level, false);
            if let Some(e) = else_stmt {
                indent(s, level);
                s.push_str("else ");
                print_stmt(s, e, level, false);
            }
        }
        Stmt::Case { kind, expr, arms } => {
            let kw = match kind {
                CaseKind::Case => "case",
                CaseKind::Casez => "casez",
                CaseKind::Casex => "casex",
            };
            let _ = writeln!(s, "{kw} ({})", print_expr(expr));
            for arm in arms {
                indent(s, level + 1);
                if arm.labels.is_empty() {
                    s.push_str("default: ");
                } else {
                    let labels: Vec<String> = arm.labels.iter().map(print_expr).collect();
                    let _ = write!(s, "{}: ", labels.join(", "));
                }
                print_stmt(s, &arm.body, level + 1, false);
            }
            indent(s, level);
            s.push_str("endcase\n");
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            let _ = write!(
                s,
                "for ({}; {}; {}) ",
                print_assign_head(init),
                print_expr(cond),
                print_assign_head(step)
            );
            print_stmt(s, body, level, false);
        }
        Stmt::While { cond, body } => {
            let _ = write!(s, "while ({}) ", print_expr(cond));
            print_stmt(s, body, level, false);
        }
        Stmt::Repeat { count, body } => {
            let _ = write!(s, "repeat ({}) ", print_expr(count));
            print_stmt(s, body, level, false);
        }
        Stmt::Forever(body) => {
            s.push_str("forever ");
            print_stmt(s, body, level, false);
        }
        Stmt::Delay { delay, stmt } => match stmt {
            None => {
                let _ = writeln!(s, "#{delay};");
            }
            Some(st) => {
                let _ = write!(s, "#{delay} ");
                print_stmt(s, st, level, false);
            }
        },
        Stmt::EventWait { event, stmt } => {
            match event {
                EventControl::Star => s.push_str("@(*)"),
                EventControl::List(list) => {
                    let entries: Vec<String> = list
                        .iter()
                        .map(|e| {
                            let edge = match e.edge {
                                Edge::Pos => "posedge ",
                                Edge::Neg => "negedge ",
                                Edge::Any => "",
                            };
                            format!("{edge}{}", e.signal)
                        })
                        .collect();
                    let _ = write!(s, "@({})", entries.join(" or "));
                }
            }
            match stmt {
                None => s.push_str(";\n"),
                Some(st) => {
                    s.push(' ');
                    print_stmt(s, st, level, false);
                }
            }
        }
        Stmt::SysCall { name, args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| match a {
                    SysArg::Str(t) => format!("\"{}\"", escape_str(t)),
                    SysArg::Expr(e) => print_expr(e),
                })
                .collect();
            if rendered.is_empty() {
                let _ = writeln!(s, "{name};");
            } else {
                let _ = writeln!(s, "{name}({});", rendered.join(", "));
            }
        }
        Stmt::Empty => s.push_str(";\n"),
    }
}

fn print_assign_head(s: &Stmt) -> String {
    match s {
        Stmt::Blocking(lv, e) => format!("{} = {}", print_lvalue(lv), print_expr(e)),
        Stmt::NonBlocking(lv, e) => format!("{} <= {}", print_lvalue(lv), print_expr(e)),
        other => panic!("for-loop head must be an assignment, got {other:?}"),
    }
}

fn escape_str(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '\n' => vec!['\\', 'n'],
            '\t' => vec!['\\', 't'],
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// Renders an lvalue.
pub fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Ident(n) => n.clone(),
        LValue::Bit(n, i) => format!("{n}[{}]", print_expr(i)),
        LValue::Part(n, msb, lsb) => format!("{n}[{msb}:{lsb}]"),
        LValue::IndexedPart(n, b, w) => format!("{n}[{} +: {w}]", print_expr(b)),
        LValue::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_lvalue).collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

fn unary_str(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Plus => "+",
        UnaryOp::Neg => "-",
        UnaryOp::Not => "~",
        UnaryOp::LogicNot => "!",
        UnaryOp::RedAnd => "&",
        UnaryOp::RedOr => "|",
        UnaryOp::RedXor => "^",
        UnaryOp::RedNand => "~&",
        UnaryOp::RedNor => "~|",
        UnaryOp::RedXnor => "~^",
    }
}

fn binary_str(op: BinaryOp) -> &'static str {
    use BinaryOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Pow => "**",
        And => "&",
        Or => "|",
        Xor => "^",
        Xnor => "~^",
        LogicAnd => "&&",
        LogicOr => "||",
        Eq => "==",
        Ne => "!=",
        CaseEq => "===",
        CaseNe => "!==",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Shl => "<<",
        Shr => ">>",
        AShl => "<<<",
        AShr => ">>>",
    }
}

/// Renders an expression (fully parenthesised; correctness over beauty).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Literal { value, signed } => {
            let s = if *signed { "s" } else { "" };
            format!("{}'{s}b{}", value.width(), value.to_binary_string())
        }
        Expr::Ident(n) => n.clone(),
        Expr::Unary(op, a) => format!("({}{})", unary_str(*op), print_expr(a)),
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", print_expr(a), binary_str(*op), print_expr(b))
        }
        Expr::Ternary(c, t, f) => format!(
            "({} ? {} : {})",
            print_expr(c),
            print_expr(t),
            print_expr(f)
        ),
        Expr::Concat(parts) => {
            let inner: Vec<String> = parts.iter().map(print_expr).collect();
            format!("{{{}}}", inner.join(", "))
        }
        Expr::Repl(n, inner) => format!("{{{n}{{{}}}}}", print_expr(inner)),
        Expr::Bit(n, i) => format!("{n}[{}]", print_expr(i)),
        Expr::Part(n, msb, lsb) => format!("{n}[{msb}:{lsb}]"),
        Expr::IndexedPart(n, b, w) => format!("{n}[{} +: {w}]", print_expr(b)),
        Expr::SysFunc(name, args) => {
            if args.is_empty() {
                name.clone()
            } else {
                let inner: Vec<String> = args.iter().map(print_expr).collect();
                format!("{name}({})", inner.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let f1 = parse(src).expect("first parse");
        let printed = print_file(&f1);
        let f2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let reprinted = print_file(&f2);
        assert_eq!(printed, reprinted, "printer not a fixpoint");
    }

    #[test]
    fn roundtrip_combinational() {
        roundtrip(
            "module m(input [3:0] a, b, input sel, output [3:0] y);\nassign y = sel ? a + b : a - b;\nendmodule",
        );
    }

    #[test]
    fn roundtrip_sequential() {
        roundtrip(
            "module m(input clk, rst, input [7:0] d, output reg [7:0] q);\nalways @(posedge clk) begin\nif (rst) q <= 8'd0;\nelse q <= d;\nend\nendmodule",
        );
    }

    #[test]
    fn roundtrip_case_fsm() {
        roundtrip(
            "module m(input clk, input x, output reg [1:0] s);\nlocalparam A = 2'd0;\nparameter B = 2'd1;\nalways @(posedge clk) begin\ncase (s)\nA: if (x) s <= B;\nB: s <= A;\ndefault: s <= A;\nendcase\nend\nendmodule",
        );
    }

    #[test]
    fn roundtrip_testbench() {
        roundtrip(
            "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg [3:0] a;\nwire [3:0] y;\ninteger f;\ninitial begin\na = 4'd0;\n#10 $fdisplay(f, \"a=%0d y=%0d\", a, y);\nrepeat (3) begin\na = a + 4'd1;\n#10 $fdisplay(f, \"a=%0d y=%0d\", a, y);\nend\n$finish;\nend\nendmodule",
        );
    }

    #[test]
    fn roundtrip_selects_and_concats() {
        roundtrip(
            "module m(input [7:0] a, output [7:0] y, output o);\nassign y = {a[3:0], {2{a[7]}}, a[1], a[0]};\nassign o = ^a;\nendmodule",
        );
    }

    #[test]
    fn roundtrip_instances() {
        roundtrip(
            "module inv(input a, output y);\nassign y = ~a;\nendmodule\nmodule top(input x, output z);\nwire m;\ninv u1 (.a(x), .y(m));\ninv u2 (m, z);\nendmodule",
        );
    }

    #[test]
    fn roundtrip_for_and_while() {
        roundtrip(
            "module m(input [7:0] v, output reg [3:0] n);\ninteger i;\nalways @(*) begin\nn = 4'd0;\nfor (i = 0; i < 8; i = i + 1) begin\nif (v[i]) n = n + 4'd1;\nend\nend\nendmodule",
        );
    }

    #[test]
    fn printed_output_simulates() {
        // The printed form must behave identically.
        let src = "module tb;\nreg [3:0] a;\nwire [3:0] y;\nassign y = a * 4'd3;\ninitial begin\na = 4'd5;\n#1 $display(\"%0d\", y);\n$finish;\nend\nendmodule";
        let direct = crate::sim::run_source(src, "tb").expect("direct");
        let printed = print_file(&parse(src).expect("parse"));
        let via_print = crate::sim::run_source(&printed, "tb").expect("printed");
        assert_eq!(direct.lines, via_print.lines);
    }
}
