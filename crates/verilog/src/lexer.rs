//! Tokenizer for the supported Verilog subset.

use crate::error::{ParseError, Span};
use crate::logic::{Bit, LogicVec};
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// Identifier or escaped identifier.
    Ident(String),
    /// A language keyword (`module`, `always`, ...).
    Keyword(Keyword),
    /// A sized or unsized number literal, e.g. `4'b1010`, `10`, `8'hFF`.
    Number(NumberLit),
    /// A string literal (quotes stripped, escapes resolved).
    Str(String),
    /// A system task or function name including the `$`, e.g. `$display`.
    SysName(String),
    /// Punctuation and operators.
    Punct(Punct),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::SysName(s) => write!(f, "{s}"),
            Token::Punct(p) => write!(f, "{p}"),
        }
    }
}

macro_rules! keywords {
    ($($kw:ident => $text:literal),+ $(,)?) => {
        /// Reserved words recognised by the lexer.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($kw),+
        }

        impl Keyword {
            /// Parses a keyword from its source spelling.
            #[allow(clippy::should_implement_trait)]
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$kw),)+
                    _ => None,
                }
            }

            /// The source spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$kw => $text,)+
                }
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.as_str())
            }
        }
    };
}

keywords! {
    Module => "module",
    Endmodule => "endmodule",
    Input => "input",
    Output => "output",
    Inout => "inout",
    Wire => "wire",
    Reg => "reg",
    Integer => "integer",
    Signed => "signed",
    Parameter => "parameter",
    Localparam => "localparam",
    Assign => "assign",
    Always => "always",
    Initial => "initial",
    Begin => "begin",
    End => "end",
    If => "if",
    Else => "else",
    Case => "case",
    Casez => "casez",
    Casex => "casex",
    Endcase => "endcase",
    Default => "default",
    For => "for",
    While => "while",
    Repeat => "repeat",
    Forever => "forever",
    Posedge => "posedge",
    Negedge => "negedge",
    Or => "or",
    Wait => "wait",
    Function => "function",
    Endfunction => "endfunction",
    Generate => "generate",
    Endgenerate => "endgenerate",
    Genvar => "genvar",
}

macro_rules! puncts {
    ($($p:ident => $text:literal),+ $(,)?) => {
        /// Operators and punctuation.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        #[allow(missing_docs)]
        pub enum Punct {
            $($p),+
        }

        impl Punct {
            /// The source spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Punct::$p => $text,)+
                }
            }
        }

        impl fmt::Display for Punct {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.as_str())
            }
        }
    };
}

puncts! {
    LParen => "(",
    RParen => ")",
    LBracket => "[",
    RBracket => "]",
    LBrace => "{",
    RBrace => "}",
    Semi => ";",
    Comma => ",",
    Dot => ".",
    Colon => ":",
    At => "@",
    Hash => "#",
    Question => "?",
    Assign => "=",
    NonBlocking => "<=",
    Plus => "+",
    Minus => "-",
    Star => "*",
    Slash => "/",
    Percent => "%",
    Power => "**",
    Amp => "&",
    AmpAmp => "&&",
    Pipe => "|",
    PipePipe => "||",
    Caret => "^",
    TildeCaret => "~^",
    Tilde => "~",
    TildeAmp => "~&",
    TildePipe => "~|",
    Bang => "!",
    EqEq => "==",
    BangEq => "!=",
    EqEqEq => "===",
    BangEqEq => "!==",
    Lt => "<",
    Gt => ">",
    GtEq => ">=",
    Shl => "<<",
    Shr => ">>",
    AShl => "<<<",
    AShr => ">>>",
    PlusColon => "+:",
    MinusColon => "-:",
}

/// A token together with its source span.
#[derive(Clone, Debug)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}

/// A number literal: optional size, base, and four-state digits.
#[derive(Clone, PartialEq, Debug)]
pub struct NumberLit {
    /// Explicit bit size (`8'hFF` → `Some(8)`), or `None` for bare numbers.
    pub size: Option<usize>,
    /// `true` when the literal carried the `s` flag (`8'sb...`).
    pub signed: bool,
    /// The value. Bare decimal literals are 32 bits wide per the standard.
    pub value: LogicVec,
}

impl fmt::Display for NumberLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.size {
            Some(s) => write!(f, "{}'b{}", s, self.value.to_binary_string()),
            None => write!(f, "{}", self.value.to_decimal_string()),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

/// Tokenizes `src`.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed literals, unterminated strings or
/// comments, and characters outside the supported grammar.
pub fn lex(src: &str) -> Result<Vec<SpannedToken>, ParseError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(tok) = lx.next_token()? {
        out.push(tok);
    }
    Ok(out)
}

impl<'a> Lexer<'a> {
    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn peek3(&self) -> Option<u8> {
        self.src.get(self.pos + 2).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(ParseError::new(start, "unterminated block comment"))
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                Some(b'`') => {
                    // Compiler directives (`timescale etc.) are skipped to
                    // end of line.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<SpannedToken>, ParseError> {
        self.skip_trivia()?;
        let span = self.span();
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let token = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_keyword(),
            b'0'..=b'9' => self.number(span)?,
            b'\'' => self.based_number(span, None)?,
            b'"' => self.string(span)?,
            b'$' => self.sysname(),
            b'\\' => self.escaped_ident(span)?,
            _ => self.punct(span)?,
        };
        Ok(Some(SpannedToken { token, span }))
    }

    fn ident_or_keyword(&mut self) -> Token {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'$' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .expect("identifier bytes are ascii")
            .to_string();
        match Keyword::from_str(&text) {
            Some(k) => Token::Keyword(k),
            None => Token::Ident(text),
        }
    }

    fn escaped_ident(&mut self, span: Span) -> Result<Token, ParseError> {
        self.bump(); // backslash
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                break;
            }
            self.bump();
        }
        if start == self.pos {
            return Err(ParseError::new(span, "empty escaped identifier"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| ParseError::new(span, "non-ascii escaped identifier"))?
            .to_string();
        Ok(Token::Ident(text))
    }

    fn sysname(&mut self) -> Token {
        let start = self.pos;
        self.bump(); // $
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        Token::SysName(
            std::str::from_utf8(&self.src[start..self.pos])
                .expect("sysname bytes are ascii")
                .to_string(),
        )
    }

    fn string(&mut self, span: Span) -> Result<Token, ParseError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(ParseError::new(span, "unterminated string literal")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'"') => s.push('"'),
                    Some(c) => s.push(c as char),
                    None => return Err(ParseError::new(span, "unterminated string escape")),
                },
                Some(c) => s.push(c as char),
            }
        }
        Ok(Token::Str(s))
    }

    fn number(&mut self, span: Span) -> Result<Token, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let digits: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are ascii")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        // A size prefix?
        let mut save = *self;
        self.skip_trivia()?;
        if self.peek() == Some(b'\'') {
            let size: usize = digits
                .parse()
                .map_err(|_| ParseError::new(span, "number size out of range"))?;
            if size == 0 || size > 1_000_000 {
                return Err(ParseError::new(span, "unreasonable literal size"));
            }
            return self.based_number(span, Some(size));
        }
        std::mem::swap(self, &mut save);
        let v: u128 = digits
            .parse()
            .map_err(|_| ParseError::new(span, "decimal literal out of range"))?;
        // Unsized decimal literals are signed per IEEE 1364 (this is what
        // makes `for (i = 6; i >= 0; ...)` terminate).
        Ok(Token::Number(NumberLit {
            size: None,
            signed: true,
            value: LogicVec::from_u128(32.max(128 - v.leading_zeros() as usize), v),
        }))
    }

    fn based_number(&mut self, span: Span, size: Option<usize>) -> Result<Token, ParseError> {
        self.bump(); // the quote
        let mut signed = false;
        let mut base = match self.bump() {
            Some(c) => c.to_ascii_lowercase(),
            None => return Err(ParseError::new(span, "truncated based literal")),
        };
        if base == b's' {
            signed = true;
            base = match self.bump() {
                Some(c) => c.to_ascii_lowercase(),
                None => return Err(ParseError::new(span, "truncated based literal")),
            };
        }
        let radix_bits = match base {
            b'b' => 1,
            b'o' => 3,
            b'h' => 4,
            b'd' => 0,
            _ => return Err(ParseError::new(span, "unknown number base")),
        };
        self.skip_trivia()?;
        let dstart = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'?' {
                self.bump();
            } else {
                break;
            }
        }
        let digits: Vec<char> = std::str::from_utf8(&self.src[dstart..self.pos])
            .expect("digits are ascii")
            .chars()
            .filter(|&c| c != '_')
            .collect();
        if digits.is_empty() {
            return Err(ParseError::new(span, "based literal with no digits"));
        }
        let value = if radix_bits == 0 {
            let text: String = digits.iter().collect();
            let v: u128 = text
                .parse()
                .map_err(|_| ParseError::new(span, "bad decimal digits in based literal"))?;
            let w = size.unwrap_or(32);
            LogicVec::from_u128(w, v)
        } else {
            let mut bits: Vec<Bit> = Vec::new();
            for ch in &digits {
                match ch.to_ascii_lowercase() {
                    'x' => bits.extend(std::iter::repeat_n(Bit::X, radix_bits)),
                    'z' | '?' => bits.extend(std::iter::repeat_n(Bit::Z, radix_bits)),
                    c => {
                        let d = c
                            .to_digit(16)
                            .ok_or_else(|| ParseError::new(span, "bad digit in literal"))?;
                        if d >= (1 << radix_bits) {
                            return Err(ParseError::new(span, "digit too large for base"));
                        }
                        for i in (0..radix_bits).rev() {
                            bits.push(if (d >> i) & 1 == 1 {
                                Bit::One
                            } else {
                                Bit::Zero
                            });
                        }
                    }
                }
            }
            let natural = LogicVec::from_bits_msb_first(&bits);
            match size {
                Some(s) => {
                    // Verilog pads with the leading digit when it is x/z,
                    // else zero-pads; truncates from the left when too long.
                    if s >= natural.width() {
                        let pad = match bits.first() {
                            Some(Bit::X) => Bit::X,
                            Some(Bit::Z) => Bit::Z,
                            _ => Bit::Zero,
                        };
                        let mut v = natural.zero_extend(s);
                        if pad != Bit::Zero {
                            for i in natural.width()..s {
                                v.set_bit(i, pad);
                            }
                        }
                        v
                    } else {
                        natural.slice(0, s)
                    }
                }
                None => natural.zero_extend(32.max(natural.width())),
            }
        };
        Ok(Token::Number(NumberLit {
            size,
            signed,
            value,
        }))
    }

    fn punct(&mut self, span: Span) -> Result<Token, ParseError> {
        use Punct::*;
        let c = self.bump().expect("peeked");
        let p = match c {
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b'{' => LBrace,
            b'}' => RBrace,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'@' => At,
            b'#' => Hash,
            b'?' => Question,
            b':' => Colon,
            b'+' => {
                if self.peek() == Some(b':') {
                    self.bump();
                    PlusColon
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.peek() == Some(b':') {
                    self.bump();
                    MinusColon
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.peek() == Some(b'*') {
                    self.bump();
                    Power
                } else {
                    Star
                }
            }
            b'/' => Slash,
            b'%' => Percent,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    PipePipe
                } else {
                    Pipe
                }
            }
            b'^' => {
                if self.peek() == Some(b'~') {
                    self.bump();
                    TildeCaret
                } else {
                    Caret
                }
            }
            b'~' => match self.peek() {
                Some(b'^') => {
                    self.bump();
                    TildeCaret
                }
                Some(b'&') => {
                    self.bump();
                    TildeAmp
                }
                Some(b'|') => {
                    self.bump();
                    TildePipe
                }
                _ => Tilde,
            },
            b'!' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        BangEqEq
                    } else {
                        BangEq
                    }
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        EqEqEq
                    } else {
                        EqEq
                    }
                } else {
                    Assign
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    NonBlocking
                }
                Some(b'<') => {
                    self.bump();
                    if self.peek() == Some(b'<') {
                        self.bump();
                        AShl
                    } else {
                        Shl
                    }
                }
                _ => Lt,
            },
            b'>' => match (self.peek(), self.peek2()) {
                (Some(b'='), _) => {
                    self.bump();
                    GtEq
                }
                (Some(b'>'), Some(b'>')) => {
                    self.bump();
                    self.bump();
                    AShr
                }
                (Some(b'>'), _) => {
                    self.bump();
                    Shr
                }
                _ => Gt,
            },
            other => {
                return Err(ParseError::new(
                    span,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        let _ = self.peek3();
        Ok(Token::Punct(p))
    }
}

impl Clone for Lexer<'_> {
    fn clone(&self) -> Self {
        *self
    }
}
impl Copy for Lexer<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src)
            .expect("lex ok")
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn keywords_and_idents() {
        let t = toks("module foo_1 endmodule always_ff");
        assert_eq!(t[0], Token::Keyword(Keyword::Module));
        assert_eq!(t[1], Token::Ident("foo_1".into()));
        assert_eq!(t[2], Token::Keyword(Keyword::Endmodule));
        assert_eq!(t[3], Token::Ident("always_ff".into()));
    }

    #[test]
    fn numbers_sized() {
        let t = toks("4'b1010 8'hFF 3'd5 12'o777 16'h_ab_cd");
        match &t[0] {
            Token::Number(n) => {
                assert_eq!(n.size, Some(4));
                assert_eq!(n.value.to_u64(), Some(0b1010));
            }
            other => panic!("expected number, got {other:?}"),
        }
        match &t[1] {
            Token::Number(n) => assert_eq!(n.value.to_u64(), Some(0xff)),
            other => panic!("expected number, got {other:?}"),
        }
        match &t[2] {
            Token::Number(n) => {
                assert_eq!(n.size, Some(3));
                assert_eq!(n.value.to_u64(), Some(5));
            }
            other => panic!("expected number, got {other:?}"),
        }
        match &t[3] {
            Token::Number(n) => assert_eq!(n.value.to_u64(), Some(0o777)),
            other => panic!("expected number, got {other:?}"),
        }
        match &t[4] {
            Token::Number(n) => assert_eq!(n.value.to_u64(), Some(0xabcd)),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn numbers_with_x_and_z() {
        let t = toks("4'b10xz 8'hxz 4'b? 1'bx");
        match &t[0] {
            Token::Number(n) => {
                use crate::logic::Bit;
                assert_eq!(n.value.bit(3), Bit::One);
                assert_eq!(n.value.bit(2), Bit::Zero);
                assert_eq!(n.value.bit(1), Bit::X);
                assert_eq!(n.value.bit(0), Bit::Z);
            }
            other => panic!("expected number, got {other:?}"),
        }
        match &t[2] {
            Token::Number(n) => {
                use crate::logic::Bit;
                // '?' pads with z
                for i in 0..4 {
                    assert_eq!(n.value.bit(i), Bit::Z);
                }
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn bare_decimal_is_32_bits() {
        let t = toks("42");
        match &t[0] {
            Token::Number(n) => {
                assert_eq!(n.size, None);
                assert_eq!(n.value.width(), 32);
                assert_eq!(n.value.to_u64(), Some(42));
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn size_with_space() {
        let t = toks("8 'hA5");
        match &t[0] {
            Token::Number(n) => {
                assert_eq!(n.size, Some(8));
                assert_eq!(n.value.to_u64(), Some(0xa5));
            }
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn operators_longest_match() {
        let t = toks("<= << <<< >= >> >>> === !== == != ~^ ~& ~| && || ** +: -:");
        use Punct::*;
        let expect = [
            NonBlocking,
            Shl,
            AShl,
            GtEq,
            Shr,
            AShr,
            EqEqEq,
            BangEqEq,
            EqEq,
            BangEq,
            TildeCaret,
            TildeAmp,
            TildePipe,
            AmpAmp,
            PipePipe,
            Power,
            PlusColon,
            MinusColon,
        ];
        for (i, p) in expect.iter().enumerate() {
            assert_eq!(t[i], Token::Punct(*p), "operator {i}");
        }
    }

    #[test]
    fn comments_and_directives_skipped() {
        let t = toks("a // line\n /* block\nmore */ b `timescale 1ns/1ps\nc");
        assert_eq!(
            t,
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Ident("c".into())
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let t = toks(r#""hello\nworld" "a\"b""#);
        assert_eq!(t[0], Token::Str("hello\nworld".into()));
        assert_eq!(t[1], Token::Str("a\"b".into()));
    }

    #[test]
    fn sysnames() {
        let t = toks("$display $fdisplay $finish $time");
        assert_eq!(t[0], Token::SysName("$display".into()));
        assert_eq!(t[3], Token::SysName("$time".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("\"abc").is_err());
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn signed_literal() {
        let t = toks("8'sb1010");
        match &t[0] {
            Token::Number(n) => assert!(n.signed),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn x_pad_to_size() {
        let t = toks("8'bx");
        match &t[0] {
            Token::Number(n) => assert!(n.value.is_fully_unknown()),
            other => panic!("expected number, got {other:?}"),
        }
    }
}
