//! Per-module driver/reader dataflow tables over the parsed AST.
//!
//! This is the analysis substrate of [`crate::lint`]: one deterministic
//! pass over a [`Module`] that records, for every declared signal, who
//! drives it (and from what kind of process), whether anything reads it,
//! and which combinational dependencies exist between signals. The pass
//! is pure — no I/O, no randomness — and every collection it builds
//! iterates in a deterministic order (`BTreeMap`/`BTreeSet`), so anything
//! derived from it is byte-stable.
//!
//! Instances are resolved against sibling modules of the same
//! [`SourceFile`]; a connection to an *unresolvable* module marks every
//! signal it touches as opaque, which downstream rules treat as "assume
//! the instance both drives and reads it".

use crate::ast::*;
use std::collections::{BTreeMap, BTreeSet};

/// The kind of process a driver lives in.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum DriverKind {
    /// A continuous `assign` item (or a net declaration initializer).
    Continuous,
    /// A combinational always block (`@(*)` or a level-sensitive list).
    AlwaysComb,
    /// An edge-triggered always block.
    AlwaysSeq,
    /// An always block with no event control (testbench clock
    /// generators: `always #5 clk = ~clk;`).
    AlwaysTimed,
    /// An `initial` block (testbench initialization idiom).
    Initial,
    /// An output port connection of a resolved module instance.
    Instance,
}

/// One recorded driver of a signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Driver {
    /// What kind of process drives the signal.
    pub kind: DriverKind,
    /// Index of the driving item in `Module::items`.
    pub item: usize,
    /// `true` when the whole signal is assigned (a plain identifier
    /// target, not a bit/part select).
    pub full: bool,
}

/// Where a signal was declared, rendered deterministically.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeclSite {
    /// Declared in the port list (index into `Module::ports`).
    Port(usize),
    /// Declared by a net item (index into `Module::items`).
    Item(usize),
}

impl DeclSite {
    /// Deterministic rendering, e.g. `port 2` or `item 5`.
    pub fn render(&self) -> String {
        match self {
            DeclSite::Port(i) => format!("port {i}"),
            DeclSite::Item(i) => format!("item {i}"),
        }
    }
}

/// Everything the analysis learned about one declared signal.
#[derive(Clone, Debug)]
pub struct SignalFacts {
    /// Declared bit width.
    pub width: usize,
    /// Port direction, when the signal is a port.
    pub port: Option<Direction>,
    /// Declaration site.
    pub decl: DeclSite,
    /// Every recorded driver, in item order.
    pub drivers: Vec<Driver>,
    /// `true` when any expression (RHS, condition, index, event, system
    /// call argument, instance input) reads the signal.
    pub read: bool,
    /// `true` when the signal is connected to an unresolvable instance:
    /// presence/absence rules must not judge it.
    pub opaque: bool,
    /// `true` when some edge-triggered always assigns the signal under a
    /// reset-like conditional (`rst`/`reset` in the condition cone).
    pub reset_seen: bool,
}

/// Facts about one always block.
#[derive(Clone, Debug)]
pub struct AlwaysFacts {
    /// Index of the always item in `Module::items`.
    pub item: usize,
    /// Classification from the event control.
    pub kind: DriverKind,
    /// Number of blocking assignments in the body.
    pub blocking: usize,
    /// Number of nonblocking assignments in the body.
    pub nonblocking: usize,
    /// Signals assigned on at least one path.
    pub may_assign: BTreeSet<String>,
    /// Signals assigned on every path.
    pub must_assign: BTreeSet<String>,
}

/// The dataflow tables of one module.
#[derive(Clone, Debug)]
pub struct ModuleDataflow {
    /// Module name.
    pub name: String,
    /// Per-signal facts, keyed by signal name (deterministic order).
    pub signals: BTreeMap<String, SignalFacts>,
    /// Per-always-block facts, in item order.
    pub always: Vec<AlwaysFacts>,
    /// Combinational dependency edges `read -> driven`, with the item
    /// index of the driving process.
    pub comb_edges: Vec<(String, String, usize)>,
    /// Statically checkable assignment/connection width deltas:
    /// `(item, target signal, lhs width, rhs width)`.
    pub width_deltas: Vec<(usize, String, usize, usize)>,
}

/// Analyzes every module of `file`, resolving instances against
/// siblings. Modules are returned in file order.
pub fn analyze(file: &SourceFile) -> Vec<ModuleDataflow> {
    let siblings: BTreeMap<&str, &Module> =
        file.modules.iter().map(|m| (m.name.as_str(), m)).collect();
    file.modules
        .iter()
        .map(|m| analyze_module(m, &siblings))
        .collect()
}

/// Analyzes one module. `siblings` maps module names available for
/// instance resolution (usually every module of the same source file).
pub fn analyze_module(module: &Module, siblings: &BTreeMap<&str, &Module>) -> ModuleDataflow {
    let mut a = Analysis {
        df: ModuleDataflow {
            name: module.name.clone(),
            signals: BTreeMap::new(),
            always: Vec::new(),
            comb_edges: Vec::new(),
            width_deltas: Vec::new(),
        },
    };
    a.declare(module);
    for (idx, item) in module.items.iter().enumerate() {
        a.visit_item(idx, item, siblings);
    }
    a.df
}

struct Analysis {
    df: ModuleDataflow,
}

impl Analysis {
    fn declare(&mut self, module: &Module) {
        for (i, p) in module.ports.iter().enumerate() {
            self.df.signals.insert(
                p.name.clone(),
                SignalFacts {
                    width: p.width(),
                    port: Some(p.dir),
                    decl: DeclSite::Port(i),
                    drivers: Vec::new(),
                    read: false,
                    opaque: false,
                    reset_seen: false,
                },
            );
        }
        for (idx, item) in module.items.iter().enumerate() {
            if let Item::Net(d) = item {
                let width = match d.kind {
                    NetKind::Integer => 32,
                    _ => d.range.map_or(1, |r| r.width()),
                };
                for (name, _) in &d.names {
                    // A net item may restate a port's kind (`output reg y`
                    // parsed as port + net); the port declaration wins.
                    self.df
                        .signals
                        .entry(name.clone())
                        .or_insert_with(|| SignalFacts {
                            width,
                            port: None,
                            decl: DeclSite::Item(idx),
                            drivers: Vec::new(),
                            read: false,
                            opaque: false,
                            reset_seen: false,
                        });
                }
            }
        }
    }

    fn mark_reads(&mut self, names: &[String]) {
        for n in names {
            if let Some(f) = self.df.signals.get_mut(n) {
                f.read = true;
            }
        }
    }

    fn add_driver(&mut self, target: &str, kind: DriverKind, item: usize, full: bool) {
        if let Some(f) = self.df.signals.get_mut(target) {
            f.drivers.push(Driver { kind, item, full });
        }
    }

    /// Records a driver for each target of `lv` and the reads its index
    /// expressions perform.
    fn drive_lvalue(&mut self, lv: &LValue, kind: DriverKind, item: usize) {
        let mut idx_reads = Vec::new();
        lv.collect_index_reads(&mut idx_reads);
        self.mark_reads(&idx_reads);
        match lv {
            LValue::Ident(n) => self.add_driver(n, kind, item, true),
            LValue::Bit(n, _) | LValue::Part(n, _, _) | LValue::IndexedPart(n, _, _) => {
                self.add_driver(n, kind, item, false);
            }
            LValue::Concat(parts) => {
                for p in parts {
                    self.drive_lvalue(p, kind, item);
                }
            }
        }
    }

    /// The statically known width of `lv`, when every component has one.
    fn lvalue_width(&self, lv: &LValue) -> Option<usize> {
        match lv {
            LValue::Ident(n) => self.df.signals.get(n).map(|f| f.width),
            LValue::Bit(_, _) => Some(1),
            LValue::Part(_, msb, lsb) => Some(msb.abs_diff(*lsb) as usize + 1),
            LValue::IndexedPart(_, _, w) => Some(*w),
            LValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p)).sum(),
        }
    }

    /// Self-determined width of `e`, with bare literals treated as
    /// context-flexible (`None`) so idioms like `q + 1` never read as a
    /// 32-bit expression. Inside concatenation/replication a literal's
    /// stored width is authoritative.
    fn expr_width(&self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Literal { .. } => None,
            Expr::Ident(n) => self.df.signals.get(n).map(|f| f.width),
            Expr::Unary(op, a) => match op {
                UnaryOp::Plus | UnaryOp::Neg | UnaryOp::Not => self.expr_width(a),
                _ => Some(1), // logical not and reductions
            },
            Expr::Binary(op, a, b) => {
                if op.is_comparison() || matches!(op, BinaryOp::LogicAnd | BinaryOp::LogicOr) {
                    Some(1)
                } else if op.is_shift() {
                    self.expr_width(a)
                } else {
                    match (self.expr_width(a), self.expr_width(b)) {
                        (Some(x), Some(y)) => Some(x.max(y)),
                        (w, None) | (None, w) => w,
                    }
                }
            }
            Expr::Ternary(_, t, f) => match (self.expr_width(t), self.expr_width(f)) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (w, None) | (None, w) => w,
            },
            Expr::Concat(parts) => parts.iter().map(|p| self.concat_width(p)).sum(),
            Expr::Repl(n, inner) => self.concat_width(inner).map(|w| w * n),
            Expr::Bit(_, _) => Some(1),
            Expr::Part(_, msb, lsb) => Some(msb.abs_diff(*lsb) as usize + 1),
            Expr::IndexedPart(_, _, w) => Some(*w),
            Expr::SysFunc(_, _) => None,
        }
    }

    /// Width of a concatenation operand, where literals keep their
    /// stored width (unsized literals are illegal in concats anyway).
    fn concat_width(&self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Literal { value, .. } => Some(value.width()),
            other => self.expr_width(other),
        }
    }

    /// Records a width delta for an assignment when the RHS is provably
    /// wider than the LHS (a silent truncation).
    fn check_assign_width(&mut self, item: usize, lv: &LValue, rhs: &Expr) {
        let (Some(lw), Some(rw)) = (self.lvalue_width(lv), self.expr_width(rhs)) else {
            return;
        };
        if rw > lw {
            let target = lv
                .targets()
                .first()
                .map_or_else(String::new, |t| t.to_string());
            self.df.width_deltas.push((item, target, lw, rw));
        }
    }

    fn visit_item(&mut self, idx: usize, item: &Item, siblings: &BTreeMap<&str, &Module>) {
        match item {
            Item::Net(d) => {
                for (name, init) in &d.names {
                    if let Some(e) = init {
                        let mut reads = Vec::new();
                        e.collect_reads(&mut reads);
                        self.mark_reads(&reads);
                        self.add_driver(name, DriverKind::Continuous, idx, true);
                        for r in dedup(reads) {
                            self.df.comb_edges.push((r, name.clone(), idx));
                        }
                    }
                }
            }
            Item::Param(p) => {
                let mut reads = Vec::new();
                p.value.collect_reads(&mut reads);
                self.mark_reads(&reads);
            }
            Item::Assign(a) => {
                let mut reads = Vec::new();
                a.rhs.collect_reads(&mut reads);
                self.mark_reads(&reads);
                self.drive_lvalue(&a.lhs, DriverKind::Continuous, idx);
                self.check_assign_width(idx, &a.lhs, &a.rhs);
                let targets: Vec<String> = a.lhs.targets().iter().map(|t| t.to_string()).collect();
                for r in dedup(reads) {
                    for t in &targets {
                        self.df.comb_edges.push((r.clone(), t.clone(), idx));
                    }
                }
            }
            Item::Always(b) => self.visit_always(idx, b),
            Item::Initial(s) => {
                let mut reads = Vec::new();
                s.collect_reads(&mut reads);
                self.mark_reads(&reads);
                visit_assignments(s, &mut |lv, rhs, _| {
                    self.drive_lvalue(lv, DriverKind::Initial, idx);
                    self.check_assign_width(idx, lv, rhs);
                });
            }
            Item::Instance(inst) => self.visit_instance(idx, inst, siblings),
        }
    }

    fn visit_always(&mut self, idx: usize, b: &AlwaysBlock) {
        let kind = classify_always(b);
        // Event-list signals are reads (the clock, level-sensitive
        // operands).
        if let Some(EventControl::List(events)) = &b.event {
            let names: Vec<String> = events.iter().map(|e| e.signal.clone()).collect();
            self.mark_reads(&names);
        }
        let mut reads = Vec::new();
        b.body.collect_reads(&mut reads);
        self.mark_reads(&reads);

        let mut facts = AlwaysFacts {
            item: idx,
            kind,
            blocking: 0,
            nonblocking: 0,
            may_assign: BTreeSet::new(),
            must_assign: must_assigned(&b.body),
        };
        visit_assignments(&b.body, &mut |lv, rhs, blocking| {
            if blocking {
                facts.blocking += 1;
            } else {
                facts.nonblocking += 1;
            }
            self.drive_lvalue(lv, kind, idx);
            self.check_assign_width(idx, lv, rhs);
            for t in lv.targets() {
                facts.may_assign.insert(t.to_string());
            }
        });

        if kind == DriverKind::AlwaysSeq {
            let mut under_reset = Vec::new();
            collect_reset_assigned(&b.body, false, &mut under_reset);
            for t in under_reset {
                if let Some(f) = self.df.signals.get_mut(&t) {
                    f.reset_seen = true;
                }
            }
        }

        if kind == DriverKind::AlwaysComb {
            // Dependency edges use only *external* reads: a value read
            // after being blocking-assigned on every path to the read is
            // the block's own intermediate, not an input.
            let mut assigned = BTreeSet::new();
            let mut external = BTreeSet::new();
            external_reads(&b.body, &mut assigned, &mut external);
            for r in &external {
                for t in &facts.may_assign {
                    self.df.comb_edges.push((r.clone(), t.clone(), idx));
                }
            }
        }

        self.df.always.push(facts);
    }

    fn visit_instance(&mut self, idx: usize, inst: &Instance, siblings: &BTreeMap<&str, &Module>) {
        let Some(target) = siblings.get(inst.module.as_str()) else {
            // Unresolvable instance: every connected signal may be read
            // and driven by it — mark opaque and move on.
            let mut names = Vec::new();
            match &inst.conns {
                Connections::Ordered(exprs) => {
                    for e in exprs {
                        e.collect_reads(&mut names);
                    }
                }
                Connections::Named(conns) => {
                    for (_, e) in conns {
                        if let Some(e) = e {
                            e.collect_reads(&mut names);
                        }
                    }
                }
            }
            self.mark_reads(&names);
            for n in dedup(names) {
                if let Some(f) = self.df.signals.get_mut(&n) {
                    f.opaque = true;
                }
            }
            return;
        };
        // Resolved: pair each connection with the port it binds.
        let pairs: Vec<(&PortDecl, &Expr)> = match &inst.conns {
            Connections::Ordered(exprs) => target
                .port_order
                .iter()
                .filter_map(|name| target.ports.iter().find(|p| &p.name == name))
                .zip(exprs.iter())
                .collect(),
            Connections::Named(conns) => conns
                .iter()
                .filter_map(|(name, e)| {
                    let port = target.ports.iter().find(|p| &p.name == name)?;
                    Some((port, e.as_ref()?))
                })
                .collect(),
        };
        for (port, expr) in pairs {
            let mut reads = Vec::new();
            expr.collect_reads(&mut reads);
            match port.dir {
                Direction::Input => {
                    self.mark_reads(&reads);
                    if let Some(w) = self.expr_width(expr) {
                        if w > port.width() {
                            self.df
                                .width_deltas
                                .push((idx, port.name.clone(), port.width(), w));
                        }
                    }
                }
                Direction::Output => {
                    // An output connection drives the connected signal;
                    // only identifier-shaped sinks are drivable.
                    match expr {
                        Expr::Ident(n) => {
                            self.add_driver(n, DriverKind::Instance, idx, true);
                            if let Some(f) = self.df.signals.get(n) {
                                if port.width() > f.width {
                                    let (pw, fw) = (port.width(), f.width);
                                    self.df.width_deltas.push((idx, n.clone(), fw, pw));
                                }
                            }
                        }
                        Expr::Bit(n, i) => {
                            let mut idx_reads = Vec::new();
                            i.collect_reads(&mut idx_reads);
                            self.mark_reads(&idx_reads);
                            self.add_driver(n, DriverKind::Instance, idx, false);
                        }
                        Expr::Part(n, _, _) | Expr::IndexedPart(n, _, _) => {
                            self.add_driver(n, DriverKind::Instance, idx, false);
                        }
                        other => {
                            // Expression sinks (concats etc.): treat the
                            // mentioned signals as opaque.
                            let mut names = Vec::new();
                            other.collect_reads(&mut names);
                            for n in dedup(names) {
                                if let Some(f) = self.df.signals.get_mut(&n) {
                                    f.opaque = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Classifies an always block by its event control.
pub fn classify_always(b: &AlwaysBlock) -> DriverKind {
    match &b.event {
        None => DriverKind::AlwaysTimed,
        Some(EventControl::Star) => DriverKind::AlwaysComb,
        Some(EventControl::List(events)) => {
            if events
                .iter()
                .any(|e| matches!(e.edge, Edge::Pos | Edge::Neg))
            {
                DriverKind::AlwaysSeq
            } else {
                DriverKind::AlwaysComb
            }
        }
    }
}

fn dedup(names: Vec<String>) -> Vec<String> {
    let set: BTreeSet<String> = names.into_iter().collect();
    set.into_iter().collect()
}

/// Calls `f(lvalue, rhs, is_blocking)` for every assignment in `s`.
fn visit_assignments(s: &Stmt, f: &mut impl FnMut(&LValue, &Expr, bool)) {
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                visit_assignments(st, f);
            }
        }
        Stmt::Blocking(lv, e) => f(lv, e, true),
        Stmt::NonBlocking(lv, e) => f(lv, e, false),
        Stmt::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            visit_assignments(then_stmt, f);
            if let Some(e) = else_stmt {
                visit_assignments(e, f);
            }
        }
        Stmt::Case { arms, .. } => {
            for arm in arms {
                visit_assignments(&arm.body, f);
            }
        }
        Stmt::For {
            init, step, body, ..
        } => {
            visit_assignments(init, f);
            visit_assignments(step, f);
            visit_assignments(body, f);
        }
        Stmt::While { body, .. } | Stmt::Repeat { body, .. } => visit_assignments(body, f),
        Stmt::Forever(body) => visit_assignments(body, f),
        Stmt::Delay { stmt, .. } | Stmt::EventWait { stmt, .. } => {
            if let Some(st) = stmt {
                visit_assignments(st, f);
            }
        }
        Stmt::SysCall { .. } | Stmt::Empty => {}
    }
}

/// The set of signals assigned on *every* execution path through `s`.
/// Conservative: loops and defaultless case statements prove nothing.
pub fn must_assigned(s: &Stmt) -> BTreeSet<String> {
    match s {
        Stmt::Block(stmts) => {
            let mut out = BTreeSet::new();
            for st in stmts {
                out.extend(must_assigned(st));
            }
            out
        }
        Stmt::Blocking(lv, _) | Stmt::NonBlocking(lv, _) => {
            lv.targets().iter().map(|t| t.to_string()).collect()
        }
        Stmt::If {
            then_stmt,
            else_stmt: Some(e),
            ..
        } => {
            let a = must_assigned(then_stmt);
            let b = must_assigned(e);
            a.intersection(&b).cloned().collect()
        }
        Stmt::If { .. } => BTreeSet::new(),
        Stmt::Case { arms, .. } => {
            if arms.is_empty() || !arms.iter().any(|a| a.labels.is_empty()) {
                return BTreeSet::new();
            }
            let mut sets = arms.iter().map(|a| must_assigned(&a.body));
            let first = sets.next().unwrap_or_default();
            sets.fold(first, |acc, s| acc.intersection(&s).cloned().collect())
        }
        Stmt::For {
            init, step, body, ..
        } => {
            // Synthesizable for-loops have constant bounds and execute
            // their body; treating them as straight-line code matches
            // what synthesis unrolls.
            let mut out = must_assigned(init);
            out.extend(must_assigned(body));
            out.extend(must_assigned(step));
            out
        }
        Stmt::Delay { stmt, .. } | Stmt::EventWait { stmt, .. } => {
            stmt.as_deref().map(must_assigned).unwrap_or_default()
        }
        _ => BTreeSet::new(),
    }
}

/// Reads of values produced *outside* the block: a read of a signal that
/// was blocking-assigned on every path reaching it is internal.
fn external_reads(s: &Stmt, assigned: &mut BTreeSet<String>, reads: &mut BTreeSet<String>) {
    let note_expr = |e: &Expr, assigned: &BTreeSet<String>, reads: &mut BTreeSet<String>| {
        let mut names = Vec::new();
        e.collect_reads(&mut names);
        for n in names {
            if !assigned.contains(&n) {
                reads.insert(n);
            }
        }
    };
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                external_reads(st, assigned, reads);
            }
        }
        Stmt::Blocking(lv, e) => {
            note_expr(e, assigned, reads);
            let mut idx = Vec::new();
            lv.collect_index_reads(&mut idx);
            for n in idx {
                if !assigned.contains(&n) {
                    reads.insert(n);
                }
            }
            for t in lv.targets() {
                assigned.insert(t.to_string());
            }
        }
        Stmt::NonBlocking(lv, e) => {
            // NBA updates are not visible to later reads in the block.
            note_expr(e, assigned, reads);
            let mut idx = Vec::new();
            lv.collect_index_reads(&mut idx);
            for n in idx {
                if !assigned.contains(&n) {
                    reads.insert(n);
                }
            }
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            note_expr(cond, assigned, reads);
            let mut a = assigned.clone();
            external_reads(then_stmt, &mut a, reads);
            let mut b = assigned.clone();
            if let Some(e) = else_stmt {
                external_reads(e, &mut b, reads);
            }
            *assigned = a.intersection(&b).cloned().collect();
        }
        Stmt::Case { expr, arms, .. } => {
            note_expr(expr, assigned, reads);
            let has_default = arms.iter().any(|a| a.labels.is_empty());
            let mut arm_sets = Vec::new();
            for arm in arms {
                for l in &arm.labels {
                    note_expr(l, assigned, reads);
                }
                let mut a = assigned.clone();
                external_reads(&arm.body, &mut a, reads);
                arm_sets.push(a);
            }
            if has_default {
                if let Some(first) = arm_sets.first().cloned() {
                    *assigned = arm_sets
                        .into_iter()
                        .skip(1)
                        .fold(first, |acc, s| acc.intersection(&s).cloned().collect());
                }
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            external_reads(init, assigned, reads);
            note_expr(cond, assigned, reads);
            external_reads(body, assigned, reads);
            external_reads(step, assigned, reads);
        }
        Stmt::While { cond, body } => {
            note_expr(cond, assigned, reads);
            external_reads(body, assigned, reads);
        }
        Stmt::Repeat { count, body } => {
            note_expr(count, assigned, reads);
            external_reads(body, assigned, reads);
        }
        Stmt::Forever(body) => external_reads(body, assigned, reads),
        Stmt::Delay { stmt, .. } | Stmt::EventWait { stmt, .. } => {
            if let Some(st) = stmt {
                external_reads(st, assigned, reads);
            }
        }
        Stmt::SysCall { args, .. } => {
            for a in args {
                if let SysArg::Expr(e) = a {
                    note_expr(e, assigned, reads);
                }
            }
        }
        Stmt::Empty => {}
    }
}

/// Signals assigned somewhere under a reset-like condition (an `if`
/// whose condition cone reads an identifier containing `rst`/`reset`).
fn collect_reset_assigned(s: &Stmt, under_reset: bool, out: &mut Vec<String>) {
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                collect_reset_assigned(st, under_reset, out);
            }
        }
        Stmt::Blocking(lv, _) | Stmt::NonBlocking(lv, _) => {
            if under_reset {
                for t in lv.targets() {
                    out.push(t.to_string());
                }
            }
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            let resetish = under_reset || reads_reset_like(cond);
            collect_reset_assigned(then_stmt, resetish, out);
            if let Some(e) = else_stmt {
                // The else of a reset conditional is the non-reset arm,
                // but everything under it is still reset-conditioned
                // state handling — count the whole if as reset-aware.
                collect_reset_assigned(e, resetish, out);
            }
        }
        Stmt::Case { arms, .. } => {
            for arm in arms {
                collect_reset_assigned(&arm.body, under_reset, out);
            }
        }
        Stmt::For {
            init, step, body, ..
        } => {
            collect_reset_assigned(init, under_reset, out);
            collect_reset_assigned(step, under_reset, out);
            collect_reset_assigned(body, under_reset, out);
        }
        Stmt::While { body, .. } | Stmt::Repeat { body, .. } => {
            collect_reset_assigned(body, under_reset, out);
        }
        Stmt::Forever(body) => collect_reset_assigned(body, under_reset, out),
        Stmt::Delay { stmt, .. } | Stmt::EventWait { stmt, .. } => {
            if let Some(st) = stmt {
                collect_reset_assigned(st, under_reset, out);
            }
        }
        Stmt::SysCall { .. } | Stmt::Empty => {}
    }
}

fn reads_reset_like(cond: &Expr) -> bool {
    let mut names = Vec::new();
    cond.collect_reads(&mut names);
    names.iter().any(|n| {
        let l = n.to_ascii_lowercase();
        l.contains("rst") || l.contains("reset")
    })
}

/// Strongly connected components of the combinational dependency graph,
/// computed with an iterative Tarjan so adversarial inputs cannot
/// overflow the stack. Returns components that form genuine cycles: more
/// than one node, or a single node with a self-edge.
pub fn comb_cycles(edges: &[(String, String, usize)]) -> Vec<Vec<String>> {
    // Index the node set deterministically.
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for (a, b, _) in edges {
        nodes.insert(a);
        nodes.insert(b);
    }
    let index: BTreeMap<&str, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let names: Vec<&str> = nodes.into_iter().collect();
    let n = names.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for (a, b, _) in edges {
        let (i, j) = (index[a.as_str()], index[b.as_str()]);
        if i == j {
            self_loop[i] = true;
        }
        if !adj[i].contains(&j) {
            adj[i].push(j);
        }
    }

    // Iterative Tarjan.
    const UNSET: usize = usize::MAX;
    let mut idx = vec![UNSET; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<String>> = Vec::new();
    // (node, next child position)
    let mut call: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if idx[start] != UNSET {
            continue;
        }
        call.push((start, 0));
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                idx[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if idx[w] == UNSET {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(idx[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == idx[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(names[w].to_string());
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 || self_loop[v] {
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
    }
    sccs.sort();
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn df(src: &str) -> ModuleDataflow {
        let file = parse(src).expect("parse");
        analyze(&file).remove(0)
    }

    #[test]
    fn continuous_assign_records_driver_and_reads() {
        let d = df("module m(input [3:0] a, output [3:0] y); assign y = a; endmodule");
        assert_eq!(d.signals["y"].drivers.len(), 1);
        assert_eq!(d.signals["y"].drivers[0].kind, DriverKind::Continuous);
        assert!(d.signals["y"].drivers[0].full);
        assert!(d.signals["a"].read);
        assert!(!d.signals["y"].read);
    }

    #[test]
    fn always_blocks_classified() {
        let d = df(
            "module m(input clk, input a, output reg y, output reg z);\n\
             always @(posedge clk) y <= a;\n\
             always @(*) z = a;\n\
             endmodule",
        );
        assert_eq!(d.always[0].kind, DriverKind::AlwaysSeq);
        assert_eq!(d.always[1].kind, DriverKind::AlwaysComb);
        assert_eq!(d.signals["y"].drivers[0].kind, DriverKind::AlwaysSeq);
        assert!(d.signals["clk"].read, "event list is a read");
    }

    #[test]
    fn must_assign_intersects_branches() {
        let d = df("module m(input s, input a, output reg y, output reg z);\n\
             always @(*) begin\n\
             z = a;\n\
             if (s) y = a; \n\
             end\n\
             endmodule");
        let f = &d.always[0];
        assert!(f.may_assign.contains("y"));
        assert!(!f.must_assign.contains("y"));
        assert!(f.must_assign.contains("z"));
    }

    #[test]
    fn internal_blocking_reads_are_not_edges() {
        let d = df("module m(input [3:0] a, b, output reg [3:0] y);\n\
             always @(*) begin y = a; y = y & b; end\n\
             endmodule");
        assert!(
            !d.comb_edges.iter().any(|(r, t, _)| r == "y" && t == "y"),
            "y read after assignment is internal: {:?}",
            d.comb_edges
        );
    }

    #[test]
    fn reset_detection() {
        let d = df(
            "module m(input clk, input rst, input d, output reg q, output reg p);\n\
             always @(posedge clk) begin\n\
             if (rst) q <= 1'b0; else q <= d;\n\
             end\n\
             always @(posedge clk) p <= d;\n\
             endmodule",
        );
        assert!(d.signals["q"].reset_seen);
        assert!(!d.signals["p"].reset_seen);
    }

    #[test]
    fn unresolved_instance_marks_opaque() {
        let d = df("module tb; reg a; wire y; mystery u(.a(a), .y(y)); endmodule");
        assert!(d.signals["a"].opaque);
        assert!(d.signals["y"].opaque);
        assert!(d.signals["y"].read);
    }

    #[test]
    fn resolved_instance_drives_outputs_reads_inputs() {
        let src = "module leaf(input i, output o); assign o = i; endmodule\n\
                   module top(input x, output w); leaf u(.i(x), .o(w)); endmodule";
        let file = parse(src).expect("parse");
        let d = &analyze(&file)[1];
        assert!(d.signals["x"].read);
        assert_eq!(d.signals["w"].drivers[0].kind, DriverKind::Instance);
        assert!(!d.signals["w"].opaque);
    }

    #[test]
    fn truncating_assign_recorded() {
        let d = df("module m(input [7:0] a, b, output [3:0] y); assign y = a + b; endmodule");
        assert_eq!(d.width_deltas.len(), 1);
        assert_eq!(d.width_deltas[0], (0, "y".to_string(), 4, 8));
        // Widening is silent.
        let d2 = df("module m(input [3:0] a, b, output [7:0] y); assign y = a + b; endmodule");
        assert!(d2.width_deltas.is_empty());
    }

    #[test]
    fn flexible_literals_do_not_truncate() {
        let d = df(
            "module m(input clk, output reg [7:0] q); always @(posedge clk) q <= q + 1; endmodule",
        );
        assert!(d.width_deltas.is_empty(), "{:?}", d.width_deltas);
    }

    #[test]
    fn cycles_found_deterministically() {
        let edges = vec![
            ("a".to_string(), "b".to_string(), 0),
            ("b".to_string(), "a".to_string(), 1),
            ("c".to_string(), "c".to_string(), 2),
            ("d".to_string(), "e".to_string(), 3),
        ];
        let cycles = comb_cycles(&edges);
        assert_eq!(
            cycles,
            vec![
                vec!["a".to_string(), "b".to_string()],
                vec!["c".to_string()]
            ]
        );
    }
}
