//! Compile-once execution form of an elaborated [`Design`].
//!
//! The tree-walking evaluator in [`crate::design`] re-dispatches on every
//! `RExpr` node and allocates a fresh [`LogicVec`] per node, and the
//! original simulator additionally deep-cloned each [`Instr`] it executed.
//! This module flattens every expression of a design — continuous-assign
//! right-hand sides, process-instruction operands, case labels, dynamic
//! lvalue indices, system-task arguments — into a linear, register-based
//! op sequence ([`EOp`]) over a shared scratch file whose slot widths are
//! known at compile time. The executor writes each op's result into its
//! preallocated register with the in-place `LogicVec` ops, so steady-state
//! evaluation of ≤64-bit designs performs **zero heap allocations** and
//! zero instruction cloning.
//!
//! Semantic equivalence with the tree-walker is load-bearing (the
//! simulation cache and the differential tests both rely on it): each op
//! mirrors one `eval` case and calls the same `LogicVec` primitives, and
//! the rare constructs whose *runtime* result width can diverge from the
//! static prediction (exponentiation with a widened base, ternaries with
//! width-mismatched branches) compile to a [`EOp::Fallback`] that invokes
//! the tree-walker for exactly that node.

use crate::ast::{BinaryOp, CaseKind, Edge, UnaryOp};
use crate::design::{
    eval, invert, signed_divmod, Design, Instr, RExpr, RExprKind, RLValue, RSysArg, SigRead,
    SignalId,
};
use crate::logic::{Bit, LogicVec};

/// Index of a compiled expression unit in [`CompiledDesign`]'s pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExprId(pub(crate) u32);

/// One compiled expression: a linear op sequence leaving its result in
/// register `out`.
#[derive(Clone, Debug)]
pub(crate) struct ExprUnit {
    pub(crate) ops: Vec<EOp>,
    pub(crate) out: u32,
}

/// A register-based expression op. `dst` is always a register strictly
/// greater than every operand register (registers are allocated in
/// post-order), which lets the executor borrow-split the scratch file.
#[derive(Clone, Debug)]
pub(crate) enum EOp {
    /// Copy a pre-resized literal from the pool.
    Lit { dst: u32, lit: u32 },
    /// Load a signal, resized to the register width.
    Sig {
        dst: u32,
        sig: SignalId,
        signed: bool,
    },
    /// `$time`, zero-extended to the register width (≥ 64).
    Time { dst: u32 },
    /// Unary operator (`Plus` is never emitted — it aliases its operand).
    Unary { op: UnaryOp, dst: u32, a: u32 },
    /// Binary operator. `signed` carries the operator-specific signedness
    /// (node signedness for `Div`/`Mod`, operand signedness for `AShr`,
    /// joint signedness for comparisons); `ctx` the evaluation context
    /// width where the tree-walker consults it (`Div`/`Mod`/`Pow`).
    Binary {
        op: BinaryOp,
        signed: bool,
        ctx: u32,
        dst: u32,
        a: u32,
        b: u32,
    },
    /// `cond ? t : f` with Verilog X-merge semantics (both branches are
    /// pre-evaluated; expression evaluation is side-effect free).
    Ternary { dst: u32, cond: u32, t: u32, f: u32 },
    /// Concatenation of part registers, MSB first.
    Concat { dst: u32, parts: Vec<u32> },
    /// Replication of a part register.
    Repl { dst: u32, a: u32, n: u32 },
    /// Dynamic bit select on a signal.
    BitSel { dst: u32, sig: SignalId, idx: u32 },
    /// Constant part select on a signal.
    PartSel {
        dst: u32,
        sig: SignalId,
        lo: u32,
        w: u32,
    },
    /// Indexed part select `sig[base +: w]`.
    IndexedPart {
        dst: u32,
        sig: SignalId,
        base: u32,
        w: u32,
    },
    /// Final width adjustment (assignment contexts).
    Resize { dst: u32, a: u32, signed: bool },
    /// Tree-walk escape hatch for width-dynamic nodes.
    Fallback { dst: u32, fb: u32 },
}

/// A compiled assignment target. Dynamic indices are expression units
/// evaluated lazily during the write walk, mirroring the tree-walker's
/// evaluation order for concatenated targets.
#[derive(Clone, Debug)]
pub(crate) enum CLValue {
    /// Whole signal.
    Sig(SignalId),
    /// One dynamically-selected bit.
    Bit(SignalId, ExprId),
    /// Constant slice: low bit (rebased) and width.
    Part(SignalId, usize, usize),
    /// Indexed part select.
    IndexedPart(SignalId, ExprId, usize),
    /// Concatenation of targets, MSB first.
    Concat(Vec<CLValue>),
}

impl CLValue {
    /// Total width of the target.
    pub(crate) fn width(&self, design: &Design) -> usize {
        match self {
            CLValue::Sig(s) => design.signal(*s).width,
            CLValue::Bit(_, _) => 1,
            CLValue::Part(_, _, w) | CLValue::IndexedPart(_, _, w) => *w,
            CLValue::Concat(parts) => parts.iter().map(|p| p.width(design)).sum(),
        }
    }
}

/// A compiled system-task argument.
#[derive(Clone, Debug)]
pub(crate) enum CSysArg {
    /// String literal (format strings).
    Str(String),
    /// Expression argument.
    Expr(ExprId),
}

/// One compiled process instruction. Control flow mirrors
/// [`crate::design::Instr`]; every embedded expression is an [`ExprId`].
#[derive(Clone, Debug)]
pub(crate) enum CInstr {
    /// Blocking assignment.
    Assign { lhs: CLValue, rhs: ExprId },
    /// Non-blocking assignment.
    NbAssign { lhs: CLValue, rhs: ExprId },
    /// Jump to `target` if the condition is not true.
    JumpIfFalse { cond: ExprId, target: usize },
    /// Unconditional jump.
    Jump(usize),
    /// Multi-way branch for `case`/`casez`/`casex`.
    CaseJump {
        sel: ExprId,
        kind: CaseKind,
        arms: Vec<(Vec<ExprId>, usize)>,
        default: usize,
    },
    /// Suspend for `n` ticks.
    Delay(u64),
    /// Suspend until one of the edges occurs.
    WaitEvent(Vec<(Edge, SignalId)>),
    /// Invoke a system task.
    SysCall { name: String, args: Vec<CSysArg> },
    /// Terminate the process.
    Halt,
}

/// A compiled continuous assignment (the trigger list stays in the
/// underlying [`Design`]).
#[derive(Clone, Debug)]
pub(crate) struct CAssign {
    pub(crate) lhs: CLValue,
    pub(crate) rhs: ExprId,
}

/// A compiled process body.
#[derive(Clone, Debug)]
pub(crate) struct CProcess {
    pub(crate) code: Vec<CInstr>,
}

/// An elaborated design together with its compile-once execution form:
/// bytecode for every expression and process, a literal pool, and the
/// scratch-register layout the executor preallocates.
///
/// Build one with [`compile`] (or [`CompiledDesign::new`] to consume the
/// design) and run it many times via
/// [`Simulator::from_compiled`](crate::sim::Simulator::from_compiled) —
/// the compile step happens once per design, not once per simulation.
#[derive(Clone, Debug)]
pub struct CompiledDesign {
    pub(crate) design: Design,
    pub(crate) assigns: Vec<CAssign>,
    pub(crate) processes: Vec<CProcess>,
    pub(crate) exprs: Vec<ExprUnit>,
    pub(crate) lits: Vec<LogicVec>,
    /// `(expression, eval context)` pairs for [`EOp::Fallback`].
    pub(crate) fallbacks: Vec<(RExpr, usize)>,
    /// Width of each scratch register.
    pub(crate) reg_widths: Vec<u32>,
}

impl CompiledDesign {
    /// Compiles `design`, consuming it.
    pub fn new(design: Design) -> CompiledDesign {
        let _span = correctbench_obs::span(correctbench_obs::Phase::Compile);
        let mut c = Compiler {
            design: &design,
            exprs: Vec::new(),
            lits: Vec::new(),
            fallbacks: Vec::new(),
            reg_widths: Vec::new(),
        };
        let assigns = design
            .assigns
            .iter()
            .map(|a| CAssign {
                lhs: c.compile_lvalue(&a.lhs),
                rhs: c.compile_assign_rhs(&a.rhs, a.lhs.width(c.design)),
            })
            .collect();
        let processes = design
            .processes
            .iter()
            .map(|p| CProcess {
                code: p.code.iter().map(|i| c.compile_instr(i)).collect(),
            })
            .collect();
        let Compiler {
            exprs,
            lits,
            fallbacks,
            reg_widths,
            ..
        } = c;
        CompiledDesign {
            design,
            assigns,
            processes,
            exprs,
            lits,
            fallbacks,
            reg_widths,
        }
    }

    /// The underlying elaborated design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The output register of expression unit `id`.
    pub(crate) fn out_reg(&self, id: ExprId) -> usize {
        self.exprs[id.0 as usize].out as usize
    }

    /// A fresh scratch register file sized for this design's bytecode.
    pub(crate) fn new_scratch(&self) -> Vec<LogicVec> {
        self.reg_widths
            .iter()
            .map(|&w| LogicVec::zeros((w as usize).max(1)))
            .collect()
    }
}

/// Compiles a borrowed design (clones it into the result).
pub fn compile(design: &Design) -> CompiledDesign {
    CompiledDesign::new(design.clone())
}

// ---- compilation ----

struct Compiler<'d> {
    design: &'d Design,
    exprs: Vec<ExprUnit>,
    lits: Vec<LogicVec>,
    fallbacks: Vec<(RExpr, usize)>,
    reg_widths: Vec<u32>,
}

impl<'d> Compiler<'d> {
    fn alloc(&mut self, width: usize) -> u32 {
        let r = self.reg_widths.len() as u32;
        self.reg_widths.push(width.max(1) as u32);
        r
    }

    /// Compiles `e` evaluated at context `ctx` into a standalone unit.
    fn compile_unit(&mut self, e: &RExpr, ctx: usize) -> ExprId {
        let mut ops = Vec::new();
        let node = self.compile_node(&mut ops, e, ctx);
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(ExprUnit { ops, out: node.reg });
        id
    }

    /// Compiles an assignment RHS: evaluated at `max(lhs_width, e.width)`
    /// then resized to the target width, exactly as the tree-walker does.
    fn compile_assign_rhs(&mut self, e: &RExpr, lhs_width: usize) -> ExprId {
        let ctx = lhs_width.max(e.width);
        let mut ops = Vec::new();
        let Node {
            reg: val,
            rw,
            dynamic,
        } = self.compile_node(&mut ops, e, ctx);
        let out = if rw == lhs_width && !dynamic {
            // resize() at the value's own (static) width is the identity.
            val
        } else {
            let dst = self.alloc(lhs_width);
            ops.push(EOp::Resize {
                dst,
                a: val,
                signed: e.signed,
            });
            dst
        };
        let id = ExprId(self.exprs.len() as u32);
        self.exprs.push(ExprUnit { ops, out });
        id
    }

    fn compile_lvalue(&mut self, lv: &RLValue) -> CLValue {
        match lv {
            RLValue::Sig(s) => CLValue::Sig(*s),
            RLValue::Part(s, lo, w) => CLValue::Part(*s, *lo, *w),
            RLValue::Bit(s, idx) => CLValue::Bit(*s, self.compile_unit(idx, idx.width)),
            RLValue::IndexedPart(s, base, w) => {
                CLValue::IndexedPart(*s, self.compile_unit(base, base.width), *w)
            }
            RLValue::Concat(parts) => {
                CLValue::Concat(parts.iter().map(|p| self.compile_lvalue(p)).collect())
            }
        }
    }

    fn compile_instr(&mut self, instr: &Instr) -> CInstr {
        match instr {
            Instr::Assign(lhs, rhs) => CInstr::Assign {
                rhs: self.compile_assign_rhs(rhs, lhs.width(self.design)),
                lhs: self.compile_lvalue(lhs),
            },
            Instr::NbAssign(lhs, rhs) => CInstr::NbAssign {
                rhs: self.compile_assign_rhs(rhs, lhs.width(self.design)),
                lhs: self.compile_lvalue(lhs),
            },
            Instr::JumpIfFalse(cond, target) => CInstr::JumpIfFalse {
                cond: self.compile_unit(cond, cond.width),
                target: *target,
            },
            Instr::Jump(t) => CInstr::Jump(*t),
            Instr::CaseJump {
                expr,
                kind,
                arms,
                default,
            } => {
                let sel_w = arms
                    .iter()
                    .flat_map(|(ls, _)| ls.iter().map(|l| l.width))
                    .fold(expr.width, usize::max);
                CInstr::CaseJump {
                    sel: self.compile_unit(expr, sel_w),
                    kind: *kind,
                    arms: arms
                        .iter()
                        .map(|(labels, t)| {
                            (
                                labels.iter().map(|l| self.compile_unit(l, sel_w)).collect(),
                                *t,
                            )
                        })
                        .collect(),
                    default: *default,
                }
            }
            Instr::Delay(d) => CInstr::Delay(*d),
            Instr::WaitEvent(edges) => CInstr::WaitEvent(edges.clone()),
            Instr::SysCall { name, args } => CInstr::SysCall {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| match a {
                        RSysArg::Str(s) => CSysArg::Str(s.clone()),
                        RSysArg::Expr(e) => CSysArg::Expr(self.compile_unit(e, e.width)),
                    })
                    .collect(),
            },
            Instr::Halt => CInstr::Halt,
        }
    }

    /// Emits ops computing `e` at context `ctx`; returns the result
    /// register, its static result width, and whether the *runtime* width
    /// can diverge from that prediction (possible only downstream of a
    /// [`EOp::Fallback`]).
    fn compile_node(&mut self, ops: &mut Vec<EOp>, e: &RExpr, ctx: usize) -> Node {
        let ctx = ctx.max(e.width);
        match &e.kind {
            RExprKind::Lit(v) => {
                let lit = self.lits.len() as u32;
                self.lits.push(v.resize(ctx, e.signed));
                let dst = self.alloc(ctx);
                ops.push(EOp::Lit { dst, lit });
                Node::fixed(dst, ctx)
            }
            RExprKind::Sig(s) => {
                let dst = self.alloc(ctx);
                ops.push(EOp::Sig {
                    dst,
                    sig: *s,
                    signed: e.signed,
                });
                Node::fixed(dst, ctx)
            }
            RExprKind::Time => {
                let w = ctx.max(64);
                let dst = self.alloc(w);
                ops.push(EOp::Time { dst });
                Node::fixed(dst, w)
            }
            RExprKind::Unary(op, a) => match op {
                UnaryOp::Plus => self.compile_node(ops, a, ctx),
                UnaryOp::Neg | UnaryOp::Not => {
                    let na = self.compile_node(ops, a, ctx);
                    let dst = self.alloc(na.rw);
                    ops.push(EOp::Unary {
                        op: *op,
                        dst,
                        a: na.reg,
                    });
                    Node {
                        reg: dst,
                        rw: na.rw,
                        dynamic: na.dynamic,
                    }
                }
                _ => {
                    // Logical not and the reductions are self-determined
                    // and produce a bit extended to the context.
                    let na = self.compile_node(ops, a, a.width);
                    let dst = self.alloc(ctx);
                    ops.push(EOp::Unary {
                        op: *op,
                        dst,
                        a: na.reg,
                    });
                    Node::fixed(dst, ctx)
                }
            },
            RExprKind::Binary(op, a, b) => self.compile_binary(ops, e, *op, a, b, ctx),
            RExprKind::Ternary(c, t, f) => {
                if result_width(t, ctx) != ctx || result_width(f, ctx) != ctx {
                    // Branch widths diverge from the context (only possible
                    // through `$time` widening): runtime width depends on
                    // which branch is taken — fall back to the tree-walker.
                    return self.fallback(ops, e, ctx);
                }
                let nc = self.compile_node(ops, c, c.width);
                let nt = self.compile_node(ops, t, ctx);
                let nf = self.compile_node(ops, f, ctx);
                let dst = self.alloc(ctx);
                ops.push(EOp::Ternary {
                    dst,
                    cond: nc.reg,
                    t: nt.reg,
                    f: nf.reg,
                });
                // A known condition hands through the branch value at its
                // runtime width.
                Node {
                    reg: dst,
                    rw: ctx,
                    dynamic: nt.dynamic || nf.dynamic,
                }
            }
            RExprKind::Concat(parts) => {
                let regs: Vec<u32> = parts
                    .iter()
                    .map(|p| self.compile_node(ops, p, p.width).reg)
                    .collect();
                let dst = self.alloc(ctx);
                ops.push(EOp::Concat { dst, parts: regs });
                Node::fixed(dst, ctx)
            }
            RExprKind::Repl(n, inner) => {
                let na = self.compile_node(ops, inner, inner.width);
                let dst = self.alloc(ctx);
                ops.push(EOp::Repl {
                    dst,
                    a: na.reg,
                    n: *n as u32,
                });
                Node::fixed(dst, ctx)
            }
            RExprKind::Bit(s, idx) => {
                let ni = self.compile_node(ops, idx, idx.width);
                let dst = self.alloc(ctx);
                ops.push(EOp::BitSel {
                    dst,
                    sig: *s,
                    idx: ni.reg,
                });
                Node::fixed(dst, ctx)
            }
            RExprKind::Part(s, lo, w) => {
                let dst = self.alloc(ctx);
                ops.push(EOp::PartSel {
                    dst,
                    sig: *s,
                    lo: *lo as u32,
                    w: *w as u32,
                });
                Node::fixed(dst, ctx)
            }
            RExprKind::IndexedPart(s, base, w) => {
                let nb = self.compile_node(ops, base, base.width);
                let dst = self.alloc(ctx);
                ops.push(EOp::IndexedPart {
                    dst,
                    sig: *s,
                    base: nb.reg,
                    w: *w as u32,
                });
                Node::fixed(dst, ctx)
            }
        }
    }

    fn compile_binary(
        &mut self,
        ops: &mut Vec<EOp>,
        e: &RExpr,
        op: BinaryOp,
        a: &RExpr,
        b: &RExpr,
        ctx: usize,
    ) -> Node {
        use BinaryOp::*;
        let (signed, actx, bctx) = match op {
            Div | Mod => (e.signed, ctx, ctx),
            AShr => (a.signed, ctx, b.width),
            Shl | AShl | Shr => (false, ctx, b.width),
            Pow => (false, ctx, b.width),
            Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
                let w = a.width.max(b.width);
                (a.signed && b.signed, w, w)
            }
            LogicAnd | LogicOr => (false, a.width, b.width),
            _ => (false, ctx, ctx),
        };
        if op == Pow && result_width(a, ctx) != ctx {
            // `x ** 0` yields a ctx-width 1 while other exponents keep the
            // base's width: runtime-dynamic when they differ.
            return self.fallback(ops, e, ctx);
        }
        let na = self.compile_node(ops, a, actx);
        let nb = self.compile_node(ops, b, bctx);
        let (w, dynamic) = match op {
            Add | Sub | Mul | And | Or | Xor | Xnor => (na.rw.max(nb.rw), na.dynamic || nb.dynamic),
            Div | Mod => {
                if e.signed {
                    (ctx, false)
                } else {
                    (na.rw.max(nb.rw), na.dynamic || nb.dynamic)
                }
            }
            // The shift amount never affects the result width.
            Shl | AShl | Shr | AShr => (na.rw, na.dynamic),
            // `exec_pow` widens to the base's runtime width.
            Pow => (ctx, na.dynamic),
            _ => (ctx, false),
        };
        let dst = self.alloc(w);
        ops.push(EOp::Binary {
            op,
            signed,
            ctx: ctx as u32,
            dst,
            a: na.reg,
            b: nb.reg,
        });
        Node {
            reg: dst,
            rw: w,
            dynamic,
        }
    }

    fn fallback(&mut self, ops: &mut Vec<EOp>, e: &RExpr, ctx: usize) -> Node {
        let fb = self.fallbacks.len() as u32;
        self.fallbacks.push((e.clone(), ctx));
        let rw = result_width(e, ctx);
        let dst = self.alloc(rw);
        ops.push(EOp::Fallback { dst, fb });
        Node {
            reg: dst,
            rw,
            dynamic: true,
        }
    }
}

/// One compiled expression node: its result register, the statically
/// predicted result width, and whether the runtime width can diverge.
struct Node {
    reg: u32,
    rw: usize,
    dynamic: bool,
}

impl Node {
    fn fixed(reg: u32, rw: usize) -> Node {
        Node {
            reg,
            rw,
            dynamic: false,
        }
    }
}

/// The width `eval(e, ctx, _)` returns. For the two runtime-dynamic cases
/// (see [`Compiler::fallback`]) this returns the widest possibility; the
/// compiler checks the exact condition before relying on it.
fn result_width(e: &RExpr, ctx: usize) -> usize {
    use BinaryOp::*;
    let ctx = ctx.max(e.width);
    match &e.kind {
        RExprKind::Time => ctx.max(64),
        RExprKind::Unary(UnaryOp::Plus | UnaryOp::Neg | UnaryOp::Not, a) => result_width(a, ctx),
        RExprKind::Binary(op, a, b) => match op {
            Add | Sub | Mul | And | Or | Xor | Xnor => {
                result_width(a, ctx).max(result_width(b, ctx))
            }
            Div | Mod => {
                if e.signed {
                    ctx
                } else {
                    result_width(a, ctx).max(result_width(b, ctx))
                }
            }
            Shl | AShl | Shr | AShr => result_width(a, ctx),
            Pow => result_width(a, ctx).max(ctx),
            _ => ctx,
        },
        RExprKind::Ternary(_, t, f) => result_width(t, ctx).max(result_width(f, ctx)).max(ctx),
        _ => ctx,
    }
}

// ---- execution ----

/// Signal-value view the executor and the fallback evaluator read from.
pub(crate) struct ValueStore<'a> {
    pub(crate) values: &'a [LogicVec],
    pub(crate) time: u64,
}

impl SigRead for ValueStore<'_> {
    fn read(&self, id: SignalId) -> &LogicVec {
        &self.values[id.0 as usize]
    }
    fn now(&self) -> u64 {
        self.time
    }
}

/// Splits the register file at `dst`: operand registers always precede
/// their consumer, so the destination can be borrowed mutably while the
/// operands stay readable.
#[inline]
fn dst_ops(regs: &mut [LogicVec], dst: u32) -> (&mut LogicVec, &[LogicVec]) {
    let (lo, hi) = regs.split_at_mut(dst as usize);
    (&mut hi[0], lo)
}

/// Stores `v` into `dst`, in place when the widths line up.
#[inline]
fn store_bit(dst: &mut LogicVec, b: Bit) {
    // from_bit(..).resize(w, false): bit 0, zeros above.
    dst.set_all_zero();
    if dst.width() >= 1 {
        dst.set_bit(0, b);
    }
}

/// Executes expression unit `id`, leaving the result in (and returning a
/// reference to) its output register.
pub(crate) fn exec_unit<'r>(
    cd: &CompiledDesign,
    id: ExprId,
    regs: &'r mut [LogicVec],
    values: &[LogicVec],
    time: u64,
) -> &'r LogicVec {
    let unit = &cd.exprs[id.0 as usize];
    for op in &unit.ops {
        exec_op(cd, op, regs, values, time);
    }
    &regs[unit.out as usize]
}

fn exec_op(cd: &CompiledDesign, op: &EOp, regs: &mut [LogicVec], values: &[LogicVec], time: u64) {
    match op {
        EOp::Lit { dst, lit } => {
            let lit = &cd.lits[*lit as usize];
            let d = &mut regs[*dst as usize];
            if d.width() == lit.width() {
                d.copy_from(lit);
            } else {
                *d = lit.clone();
            }
        }
        EOp::Sig { dst, sig, signed } => {
            regs[*dst as usize].assign_resize(&values[sig.0 as usize], *signed);
        }
        EOp::Time { dst } => {
            regs[*dst as usize].assign_resize(&LogicVec::from_u64(64, time), false);
        }
        EOp::Unary { op, dst, a } => {
            let (d, lo) = dst_ops(regs, *dst);
            let va = &lo[*a as usize];
            match op {
                UnaryOp::Plus => unreachable!("unary plus aliases its operand"),
                UnaryOp::Neg => {
                    if d.width() == va.width() {
                        d.copy_from(va);
                        d.neg_assign();
                    } else {
                        *d = va.neg();
                    }
                }
                UnaryOp::Not => {
                    if d.width() == va.width() {
                        d.copy_from(va);
                        d.not_assign();
                    } else {
                        *d = va.not();
                    }
                }
                UnaryOp::LogicNot => {
                    let b = match va.truthy() {
                        Bit::One => Bit::Zero,
                        Bit::Zero => Bit::One,
                        _ => Bit::X,
                    };
                    store_bit(d, b);
                }
                UnaryOp::RedAnd => store_bit(d, va.reduce_and()),
                UnaryOp::RedOr => store_bit(d, va.reduce_or()),
                UnaryOp::RedXor => store_bit(d, va.reduce_xor()),
                UnaryOp::RedNand => store_bit(d, invert(va.reduce_and())),
                UnaryOp::RedNor => store_bit(d, invert(va.reduce_or())),
                UnaryOp::RedXnor => store_bit(d, invert(va.reduce_xor())),
            }
        }
        EOp::Binary {
            op,
            signed,
            ctx,
            dst,
            a,
            b,
        } => {
            let (d, lo) = dst_ops(regs, *dst);
            let va = &lo[*a as usize];
            let vb = &lo[*b as usize];
            exec_binary(*op, *signed, *ctx as usize, d, va, vb);
        }
        EOp::Ternary { dst, cond, t, f } => {
            let (d, lo) = dst_ops(regs, *dst);
            let (tv, fv) = (&lo[*t as usize], &lo[*f as usize]);
            match lo[*cond as usize].truthy() {
                Bit::One => {
                    if d.width() == tv.width() {
                        d.copy_from(tv);
                    } else {
                        *d = tv.clone();
                    }
                }
                Bit::Zero => {
                    if d.width() == fv.width() {
                        d.copy_from(fv);
                    } else {
                        *d = fv.clone();
                    }
                }
                _ => {
                    // X condition: merge branch bits, X where they differ.
                    let ctx = d.width();
                    d.set_all_x();
                    for i in 0..ctx {
                        let (a, b) = (tv.bit(i), fv.bit(i));
                        if a == b && a.is_known() {
                            d.set_bit(i, a);
                        }
                    }
                }
            }
        }
        EOp::Concat { dst, parts } => {
            let (d, lo) = dst_ops(regs, *dst);
            d.set_all_zero();
            let mut at = 0usize;
            for p in parts.iter().rev() {
                let v = &lo[*p as usize];
                d.write_range(at, v, v.width());
                at += v.width();
            }
        }
        EOp::Repl { dst, a, n } => {
            let (d, lo) = dst_ops(regs, *dst);
            let v = &lo[*a as usize];
            d.set_all_zero();
            let w = v.width();
            for k in 0..*n as usize {
                if k * w >= d.width() {
                    break;
                }
                d.write_range(k * w, v, w);
            }
        }
        EOp::BitSel { dst, sig, idx } => {
            let (d, lo) = dst_ops(regs, *dst);
            let sigv = &values[sig.0 as usize];
            let b = match lo[*idx as usize].to_u64() {
                Some(i) if (i as usize) < sigv.width() => sigv.bit(i as usize),
                _ => Bit::X,
            };
            store_bit(d, b);
        }
        EOp::PartSel { dst, sig, lo, w } => {
            regs[*dst as usize].assign_slice_ext(
                &values[sig.0 as usize],
                *lo as usize,
                *w as usize,
            );
        }
        EOp::IndexedPart { dst, sig, base, w } => {
            let (d, lo) = dst_ops(regs, *dst);
            let sigv = &values[sig.0 as usize];
            match lo[*base as usize].to_u64() {
                Some(b) => d.assign_slice_ext(sigv, b as usize, *w as usize),
                None => {
                    let x = LogicVec::filled_x(*w as usize);
                    d.assign_slice_ext(&x, 0, *w as usize);
                }
            }
        }
        EOp::Resize { dst, a, signed } => {
            let (d, lo) = dst_ops(regs, *dst);
            d.assign_resize(&lo[*a as usize], *signed);
        }
        EOp::Fallback { dst, fb } => {
            let (e, ctx) = &cd.fallbacks[*fb as usize];
            let store = ValueStore { values, time };
            regs[*dst as usize] = eval(e, *ctx, &store);
        }
    }
}

fn exec_binary(
    op: BinaryOp,
    signed: bool,
    ctx: usize,
    d: &mut LogicVec,
    va: &LogicVec,
    vb: &LogicVec,
) {
    use BinaryOp::*;
    let same = d.width() == va.width() && va.width() == vb.width();
    match op {
        Add if same => {
            d.copy_from(va);
            d.add_assign(vb);
        }
        Sub if same => {
            d.copy_from(va);
            d.sub_assign(vb);
        }
        And if same => {
            d.copy_from(va);
            d.and_assign(vb);
        }
        Or if same => {
            d.copy_from(va);
            d.or_assign(vb);
        }
        Xor if same => {
            d.copy_from(va);
            d.xor_assign(vb);
        }
        Xnor if same => {
            d.copy_from(va);
            d.xnor_assign(vb);
        }
        Add => *d = va.add(vb),
        Sub => *d = va.sub(vb),
        Mul => *d = va.mul(vb),
        And => *d = va.and(vb),
        Or => *d = va.or(vb),
        Xor => *d = va.xor(vb),
        Xnor => *d = va.xnor(vb),
        Div => {
            *d = if signed {
                signed_divmod(va, vb, ctx, true)
            } else {
                va.div(vb)
            }
        }
        Mod => {
            *d = if signed {
                signed_divmod(va, vb, ctx, false)
            } else {
                va.rem(vb)
            }
        }
        Pow => *d = exec_pow(va, vb, ctx),
        LogicAnd | LogicOr => {
            let (ta, tb) = (va.truthy(), vb.truthy());
            let r = if op == LogicAnd {
                match (ta, tb) {
                    (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
                    (Bit::One, Bit::One) => Bit::One,
                    _ => Bit::X,
                }
            } else {
                match (ta, tb) {
                    (Bit::One, _) | (_, Bit::One) => Bit::One,
                    (Bit::Zero, Bit::Zero) => Bit::Zero,
                    _ => Bit::X,
                }
            };
            store_bit(d, r);
        }
        Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => {
            let r = match op {
                Eq => va.eq_logic(vb),
                Ne => invert(va.eq_logic(vb)),
                CaseEq => va.eq_case(vb),
                CaseNe => invert(va.eq_case(vb)),
                Lt => va.lt(vb, signed),
                Ge => invert(va.lt(vb, signed)),
                Gt => vb.lt(va, signed),
                Le => invert(vb.lt(va, signed)),
                _ => unreachable!(),
            };
            store_bit(d, r);
        }
        Shl | AShl => *d = va.shl(vb),
        Shr => *d = va.shr(vb),
        AShr => {
            *d = if signed { va.ashr(vb) } else { va.shr(vb) };
        }
    }
}

/// Mirrors the tree-walker's exponentiation (square-and-multiply over
/// `LogicVec::mul`, all-`x` on unknown inputs).
fn exec_pow(base: &LogicVec, exp: &LogicVec, ctx: usize) -> LogicVec {
    match exp.to_u64() {
        None => LogicVec::filled_x(ctx),
        Some(mut e) => {
            if !base.is_fully_known() {
                return LogicVec::filled_x(ctx);
            }
            let mut acc = LogicVec::from_u64(ctx, 1);
            let mut sq = base.clone();
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc.mul(&sq);
                }
                e >>= 1;
                if e > 0 {
                    sq = sq.mul(&sq);
                }
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{SignalDef, SignalKind};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Signal widths straddling the inline/spilled LogicVec boundary.
    const SIG_WIDTHS: &[usize] = &[1, 7, 8, 16, 33, 63, 64, 65, 80, 100];

    fn test_design() -> Design {
        Design {
            signals: SIG_WIDTHS
                .iter()
                .enumerate()
                .map(|(i, &w)| SignalDef {
                    name: format!("s{i}"),
                    width: w,
                    signed: i % 3 == 0,
                    lsb: 0,
                    kind: SignalKind::Reg,
                })
                .collect(),
            assigns: Vec::new(),
            processes: Vec::new(),
        }
    }

    fn rand_logic(rng: &mut StdRng, width: usize) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        // Mostly-known values with occasional x/z islands, so arithmetic
        // stays interesting while x-propagation is still exercised.
        let unknowns = rng.gen_bool(0.4);
        for i in 0..width {
            let b = if unknowns && rng.gen_bool(0.15) {
                if rng.gen_bool(0.5) {
                    Bit::X
                } else {
                    Bit::Z
                }
            } else if rng.gen_bool(0.5) {
                Bit::One
            } else {
                Bit::Zero
            };
            v.set_bit(i, b);
        }
        v
    }

    fn rand_values(rng: &mut StdRng) -> Vec<LogicVec> {
        SIG_WIDTHS.iter().map(|&w| rand_logic(rng, w)).collect()
    }

    const UNARY_OPS: &[UnaryOp] = &[
        UnaryOp::Plus,
        UnaryOp::Neg,
        UnaryOp::Not,
        UnaryOp::LogicNot,
        UnaryOp::RedAnd,
        UnaryOp::RedOr,
        UnaryOp::RedXor,
        UnaryOp::RedNand,
        UnaryOp::RedNor,
        UnaryOp::RedXnor,
    ];

    const BINARY_OPS: &[BinaryOp] = &[
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Mod,
        BinaryOp::Pow,
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Xnor,
        BinaryOp::LogicAnd,
        BinaryOp::LogicOr,
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::CaseEq,
        BinaryOp::CaseNe,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::Shl,
        BinaryOp::Shr,
        BinaryOp::AShl,
        BinaryOp::AShr,
    ];

    /// A random expression tree over the test signal table. Node width
    /// annotations follow the elaborator's sizing rules most of the time
    /// but are randomly perturbed, which exercises every context-widening
    /// path (and routinely drives the Pow/Ternary fallback cases).
    fn rand_expr(rng: &mut StdRng, depth: usize) -> RExpr {
        let signed = rng.gen_bool(0.3);
        let leaf = depth == 0 || rng.gen_bool(0.25);
        let mut e = if leaf {
            match rng.gen_range(0u32..8) {
                0 | 1 => {
                    let w = rng.gen_range(1usize..=100);
                    RExpr {
                        width: w,
                        signed,
                        kind: RExprKind::Lit(rand_logic(rng, w)),
                    }
                }
                2 => RExpr {
                    width: 64,
                    signed: false,
                    kind: RExprKind::Time,
                },
                _ => {
                    let s = rng.gen_range(0usize..SIG_WIDTHS.len());
                    RExpr {
                        width: SIG_WIDTHS[s],
                        signed,
                        kind: RExprKind::Sig(SignalId(s as u32)),
                    }
                }
            }
        } else {
            match rng.gen_range(0u32..8) {
                0 => {
                    let op = UNARY_OPS[rng.gen_range(0usize..UNARY_OPS.len())];
                    let a = rand_expr(rng, depth - 1);
                    let width = match op {
                        UnaryOp::Plus | UnaryOp::Neg | UnaryOp::Not => a.width,
                        _ => 1,
                    };
                    RExpr {
                        width,
                        signed,
                        kind: RExprKind::Unary(op, Box::new(a)),
                    }
                }
                1 | 2 => {
                    let op = BINARY_OPS[rng.gen_range(0usize..BINARY_OPS.len())];
                    let a = rand_expr(rng, depth - 1);
                    let b = rand_expr(rng, depth - 1);
                    use BinaryOp::*;
                    let width = match op {
                        LogicAnd | LogicOr | Eq | Ne | CaseEq | CaseNe | Lt | Le | Gt | Ge => 1,
                        Shl | AShl | Shr | AShr | Pow => a.width,
                        _ => a.width.max(b.width),
                    };
                    RExpr {
                        width,
                        signed,
                        kind: RExprKind::Binary(op, Box::new(a), Box::new(b)),
                    }
                }
                3 => {
                    let c = rand_expr(rng, depth - 1);
                    let t = rand_expr(rng, depth - 1);
                    let f = rand_expr(rng, depth - 1);
                    RExpr {
                        width: t.width.max(f.width),
                        signed,
                        kind: RExprKind::Ternary(Box::new(c), Box::new(t), Box::new(f)),
                    }
                }
                4 => {
                    let n = rng.gen_range(1usize..=3);
                    let parts: Vec<RExpr> = (0..n).map(|_| rand_expr(rng, depth - 1)).collect();
                    RExpr {
                        width: parts.iter().map(|p| p.width).sum(),
                        signed: false,
                        kind: RExprKind::Concat(parts),
                    }
                }
                5 => {
                    let n = rng.gen_range(1usize..=3);
                    let inner = rand_expr(rng, depth - 1);
                    RExpr {
                        width: n * inner.width,
                        signed: false,
                        kind: RExprKind::Repl(n, Box::new(inner)),
                    }
                }
                6 => {
                    let s = rng.gen_range(0usize..SIG_WIDTHS.len());
                    let idx = rand_expr(rng, depth - 1);
                    RExpr {
                        width: 1,
                        signed: false,
                        kind: RExprKind::Bit(SignalId(s as u32), Box::new(idx)),
                    }
                }
                _ => {
                    let s = rng.gen_range(0usize..SIG_WIDTHS.len());
                    let w = rng.gen_range(1usize..=80);
                    if rng.gen_bool(0.5) {
                        let lo = rng.gen_range(0usize..120);
                        RExpr {
                            width: w,
                            signed: false,
                            kind: RExprKind::Part(SignalId(s as u32), lo, w),
                        }
                    } else {
                        let base = rand_expr(rng, depth - 1);
                        RExpr {
                            width: w,
                            signed: false,
                            kind: RExprKind::IndexedPart(SignalId(s as u32), Box::new(base), w),
                        }
                    }
                }
            }
        };
        if rng.gen_bool(0.2) {
            e.width = rng.gen_range(1usize..=110);
        }
        e
    }

    fn compile_standalone(
        design: &Design,
        f: impl FnOnce(&mut Compiler) -> ExprId,
    ) -> (CompiledDesign, ExprId) {
        let mut c = Compiler {
            design,
            exprs: Vec::new(),
            lits: Vec::new(),
            fallbacks: Vec::new(),
            reg_widths: Vec::new(),
        };
        let id = f(&mut c);
        let cd = CompiledDesign {
            design: design.clone(),
            assigns: Vec::new(),
            processes: Vec::new(),
            exprs: c.exprs,
            lits: c.lits,
            fallbacks: c.fallbacks,
            reg_widths: c.reg_widths,
        };
        (cd, id)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(300))]

        /// The core differential property: on random expression trees
        /// (x/z values, widths straddling 64 bits, perturbed sizing
        /// annotations) the bytecode executor computes bit-for-bit the
        /// same `LogicVec` — width included — as the tree-walking `eval`,
        /// and keeps doing so when the scratch registers are reused
        /// across runs with fresh stimulus.
        #[test]
        fn bytecode_matches_tree_walker(seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let design = test_design();
            let e = rand_expr(&mut rng, 4);
            let ctx = if rng.gen_bool(0.5) { e.width } else { rng.gen_range(1usize..=110) };
            let (cd, unit) = compile_standalone(&design, |c| c.compile_unit(&e, ctx));
            let mut scratch = cd.new_scratch();
            for round in 0..3 {
                let values = rand_values(&mut rng);
                let time = rng.gen_range(0u64..1_000);
                let store = ValueStore { values: &values, time };
                let want = eval(&e, ctx, &store);
                let got = exec_unit(&cd, unit, &mut scratch, &values, time);
                prop_assert_eq!(got, &want, "round {} ctx {} expr {:?}", round, ctx, e);
            }
        }

        /// The assignment path (context widening + final resize, with the
        /// identity-resize elision) matches the tree-walker's
        /// `eval(rhs, max(lhs, rhs)).resize(lhs, signed)`.
        #[test]
        fn assign_rhs_matches_tree_walker(seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let design = test_design();
            let e = rand_expr(&mut rng, 3);
            let lhs_width = rng.gen_range(1usize..=110);
            let (cd, unit) = compile_standalone(&design, |c| c.compile_assign_rhs(&e, lhs_width));
            let mut scratch = cd.new_scratch();
            for round in 0..3 {
                let values = rand_values(&mut rng);
                let time = rng.gen_range(0u64..1_000);
                let store = ValueStore { values: &values, time };
                let want = eval(&e, lhs_width.max(e.width), &store).resize(lhs_width, e.signed);
                let got = exec_unit(&cd, unit, &mut scratch, &values, time);
                prop_assert_eq!(got, &want, "round {} lhs_width {} expr {:?}", round, lhs_width, e);
            }
        }
    }

    #[test]
    fn time_widening_and_pow_fallback() {
        // `$time`-rooted widths and `**` with a widened base drive the
        // fallback path deterministically.
        let design = test_design();
        let time_e = RExpr {
            width: 64,
            signed: false,
            kind: RExprKind::Time,
        };
        let pow = RExpr {
            width: 8,
            signed: false,
            kind: RExprKind::Binary(
                BinaryOp::Pow,
                Box::new(time_e),
                Box::new(RExpr::lit(LogicVec::from_u64(4, 2), false)),
            ),
        };
        let (cd, unit) = compile_standalone(&design, |c| c.compile_unit(&pow, 8));
        assert!(
            !cd.fallbacks.is_empty(),
            "a widened pow base must compile to a fallback"
        );
        let values: Vec<LogicVec> = SIG_WIDTHS.iter().map(|&w| LogicVec::zeros(w)).collect();
        let mut scratch = cd.new_scratch();
        for time in [0u64, 3, 77] {
            let store = ValueStore {
                values: &values,
                time,
            };
            let want = eval(&pow, 8, &store);
            let got = exec_unit(&cd, unit, &mut scratch, &values, time);
            assert_eq!(got, &want, "time {time}");
        }
    }

    #[test]
    fn compiled_design_reports_layout() {
        let src = "module tb;\nreg [7:0] a;\nwire [7:0] y;\nassign y = a + 8'd1;\ninitial begin a = 8'd1; #1 $finish; end\nendmodule";
        let design = crate::elaborate::elaborate(&crate::parser::parse(src).expect("parse"), "tb")
            .expect("elab");
        let cd = CompiledDesign::new(design);
        assert_eq!(cd.assigns.len(), 1);
        assert_eq!(cd.processes.len(), 1);
        assert!(!cd.exprs.is_empty());
        assert!(!cd.reg_widths.is_empty());
        // Registers are allocated in post-order: every op's operands
        // precede its destination, the invariant the executor's
        // borrow-split relies on.
        for unit in &cd.exprs {
            for op in &unit.ops {
                let (dst, operands): (u32, Vec<u32>) = match op {
                    EOp::Lit { dst, .. }
                    | EOp::Sig { dst, .. }
                    | EOp::Time { dst }
                    | EOp::PartSel { dst, .. }
                    | EOp::Fallback { dst, .. } => (*dst, vec![]),
                    EOp::Unary { dst, a, .. }
                    | EOp::Resize { dst, a, .. }
                    | EOp::Repl { dst, a, .. } => (*dst, vec![*a]),
                    EOp::Binary { dst, a, b, .. } => (*dst, vec![*a, *b]),
                    EOp::Ternary { dst, cond, t, f } => (*dst, vec![*cond, *t, *f]),
                    EOp::Concat { dst, parts } => (*dst, parts.clone()),
                    EOp::BitSel { dst, idx, .. } => (*dst, vec![*idx]),
                    EOp::IndexedPart { dst, base, .. } => (*dst, vec![*base]),
                };
                for o in operands {
                    assert!(o < dst, "operand {o} not before dst {dst}");
                }
            }
        }
    }
}
