//! Stable structural hashing for cache keys.
//!
//! Content-addressed caches (the simulation, elaboration and session
//! pools in `tbgen`) need a hash that is equal for structurally equal
//! artifacts, stable across processes and platforms, and **cheap enough
//! to compute on every cache probe**. `std::collections::hash_map::
//! DefaultHasher` makes no cross-version stability promise, and the
//! first-generation scheme here — FNV-1a over a `Debug`/pretty-print
//! rendering — was stable but cost nearly as much as elaboration itself
//! (formatting machinery, per-node string traffic).
//!
//! The current scheme is a direct structural visitor: [`StructuralHash`]
//! walks a value's own shape, feeding variant tags and payloads straight
//! into an FNV-1a state ([`FingerprintHasher`]) with no intermediate
//! text. The result is a typed [`Fingerprint`] — cache keys carry the
//! newtype, so a raw `u64` from some other hash cannot be confused for
//! a content address.
//!
//! The old renderers survive as **test-only oracles**: [`debug_hash`]
//! and [`structural_hash`] define what "distinguishable" means, and the
//! differential suite (`tests/fingerprint_props.rs`) pins that visitor
//! fingerprints separate every design pair the pretty-print hash
//! separates while agreeing on re-parses. Production cache paths must
//! not call them (a source-scan test in `tbgen` enforces it).

use crate::ast::{
    AlwaysBlock, AssignItem, CaseArm, CaseKind, Connections, Direction, Edge, EventControl,
    EventExpr, Expr, Instance, Item, LValue, Module, NetDecl, NetKind, ParamDecl, PortDecl, Range,
    SourceFile, Stmt, SysArg, UnaryOp,
};
use crate::pretty::print_file;
use std::fmt::{self, Write};

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A stable 64-bit structural fingerprint — the typed content address of
/// one artifact (design source, checker program, scenario set, port
/// signature). Equal values fingerprint equal in any process on any
/// platform; the newtype keeps cache keys from silently accepting hashes
/// computed some other way.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// An incremental FNV-1a state fed by structural visitors. Variant tags,
/// lengths and payload words go in directly — no `Debug` or
/// pretty-print rendering, no intermediate allocation.
#[derive(Clone, Copy, Debug)]
pub struct FingerprintHasher(u64);

impl FingerprintHasher {
    /// A fresh state at the FNV-1a offset basis.
    pub fn new() -> Self {
        FingerprintHasher(0xcbf2_9ce4_8422_2325)
    }

    /// The accumulated fingerprint.
    pub fn finish(self) -> Fingerprint {
        Fingerprint(self.0)
    }

    /// Folds raw bytes into the state.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one byte — enum variant tags use this.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Folds a 64-bit word (little-endian byte order, fixed width so
    /// adjacent fields cannot alias each other's bytes).
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.write_bytes(&w.to_le_bytes());
    }

    /// Folds a `usize` as a 64-bit word (stable across platforms).
    #[inline]
    pub fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    /// Folds an `i64` via its two's-complement bits.
    #[inline]
    pub fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64);
    }

    /// Folds a boolean as one byte.
    #[inline]
    pub fn write_bool(&mut self, b: bool) {
        self.write_u8(b as u8);
    }

    /// Folds a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// cannot collide.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

/// Direct structural hashing: a visitor over the value's own shape.
///
/// Implementations must be *injective up to structural equality*: two
/// values feed identical byte streams iff they are structurally equal.
/// The conventions that guarantee it: every enum writes a variant tag
/// before its payload, every sequence writes its length before its
/// elements, and strings are length-prefixed.
pub trait StructuralHash {
    /// Feeds this value's structure into `h`.
    fn hash_structure(&self, h: &mut FingerprintHasher);

    /// The fingerprint of this value, computed fresh. Types with a
    /// cached fingerprint (see [`SourceFile::fingerprint`]) shadow this
    /// with an inherent method; calling the trait method always
    /// recomputes.
    fn fingerprint(&self) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        self.hash_structure(&mut h);
        h.finish()
    }
}

impl<T: StructuralHash + ?Sized> StructuralHash for &T {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        (**self).hash_structure(h);
    }
}

impl<T: StructuralHash> StructuralHash for Box<T> {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        (**self).hash_structure(h);
    }
}

impl<T: StructuralHash> StructuralHash for [T] {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_usize(self.len());
        for item in self {
            item.hash_structure(h);
        }
    }
}

impl<T: StructuralHash> StructuralHash for Vec<T> {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.as_slice().hash_structure(h);
    }
}

impl<T: StructuralHash> StructuralHash for Option<T> {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.hash_structure(h);
            }
        }
    }
}

impl<A: StructuralHash, B: StructuralHash> StructuralHash for (A, B) {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.0.hash_structure(h);
        self.1.hash_structure(h);
    }
}

impl StructuralHash for str {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_str(self);
    }
}

impl StructuralHash for String {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_str(self);
    }
}

impl StructuralHash for bool {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_bool(*self);
    }
}

impl StructuralHash for u64 {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u64(*self);
    }
}

impl StructuralHash for usize {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_usize(*self);
    }
}

impl StructuralHash for i64 {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_i64(*self);
    }
}

// ---------------------------------------------------------------------
// AST visitor. Fieldless enums cast to their discriminant; every
// payload-carrying enum writes an explicit tag byte first.
// ---------------------------------------------------------------------

impl StructuralHash for SourceFile {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.modules.hash_structure(h);
    }
}

impl StructuralHash for Module {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_str(&self.name);
        self.port_order.hash_structure(h);
        self.ports.hash_structure(h);
        self.items.hash_structure(h);
    }
}

impl StructuralHash for Direction {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u8(*self as u8);
    }
}

impl StructuralHash for NetKind {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u8(*self as u8);
    }
}

impl StructuralHash for Edge {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u8(*self as u8);
    }
}

impl StructuralHash for CaseKind {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u8(*self as u8);
    }
}

impl StructuralHash for UnaryOp {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u8(*self as u8);
    }
}

impl StructuralHash for crate::ast::BinaryOp {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_u8(*self as u8);
    }
}

impl StructuralHash for Range {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_i64(self.msb);
        h.write_i64(self.lsb);
    }
}

impl StructuralHash for PortDecl {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_str(&self.name);
        self.dir.hash_structure(h);
        self.net.hash_structure(h);
        h.write_bool(self.signed);
        self.range.hash_structure(h);
    }
}

impl StructuralHash for Item {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            Item::Net(d) => {
                h.write_u8(0);
                d.hash_structure(h);
            }
            Item::Param(p) => {
                h.write_u8(1);
                p.hash_structure(h);
            }
            Item::Assign(a) => {
                h.write_u8(2);
                a.hash_structure(h);
            }
            Item::Always(a) => {
                h.write_u8(3);
                a.hash_structure(h);
            }
            Item::Initial(s) => {
                h.write_u8(4);
                s.hash_structure(h);
            }
            Item::Instance(i) => {
                h.write_u8(5);
                i.hash_structure(h);
            }
        }
    }
}

impl StructuralHash for NetDecl {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.kind.hash_structure(h);
        h.write_bool(self.signed);
        self.range.hash_structure(h);
        self.names.hash_structure(h);
    }
}

impl StructuralHash for ParamDecl {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_bool(self.local);
        h.write_str(&self.name);
        self.value.hash_structure(h);
    }
}

impl StructuralHash for AssignItem {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.lhs.hash_structure(h);
        self.rhs.hash_structure(h);
    }
}

impl StructuralHash for AlwaysBlock {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.event.hash_structure(h);
        self.body.hash_structure(h);
    }
}

impl StructuralHash for EventControl {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            EventControl::Star => h.write_u8(0),
            EventControl::List(es) => {
                h.write_u8(1);
                es.hash_structure(h);
            }
        }
    }
}

impl StructuralHash for EventExpr {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.edge.hash_structure(h);
        h.write_str(&self.signal);
    }
}

impl StructuralHash for Instance {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        h.write_str(&self.module);
        h.write_str(&self.name);
        self.conns.hash_structure(h);
    }
}

impl StructuralHash for Connections {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            Connections::Ordered(es) => {
                h.write_u8(0);
                es.hash_structure(h);
            }
            Connections::Named(ns) => {
                h.write_u8(1);
                ns.hash_structure(h);
            }
        }
    }
}

impl StructuralHash for Stmt {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            Stmt::Block(stmts) => {
                h.write_u8(0);
                stmts.hash_structure(h);
            }
            Stmt::Blocking(lv, e) => {
                h.write_u8(1);
                lv.hash_structure(h);
                e.hash_structure(h);
            }
            Stmt::NonBlocking(lv, e) => {
                h.write_u8(2);
                lv.hash_structure(h);
                e.hash_structure(h);
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
            } => {
                h.write_u8(3);
                cond.hash_structure(h);
                then_stmt.hash_structure(h);
                else_stmt.hash_structure(h);
            }
            Stmt::Case { kind, expr, arms } => {
                h.write_u8(4);
                kind.hash_structure(h);
                expr.hash_structure(h);
                arms.hash_structure(h);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                h.write_u8(5);
                init.hash_structure(h);
                cond.hash_structure(h);
                step.hash_structure(h);
                body.hash_structure(h);
            }
            Stmt::While { cond, body } => {
                h.write_u8(6);
                cond.hash_structure(h);
                body.hash_structure(h);
            }
            Stmt::Repeat { count, body } => {
                h.write_u8(7);
                count.hash_structure(h);
                body.hash_structure(h);
            }
            Stmt::Forever(body) => {
                h.write_u8(8);
                body.hash_structure(h);
            }
            Stmt::Delay { delay, stmt } => {
                h.write_u8(9);
                h.write_u64(*delay);
                stmt.hash_structure(h);
            }
            Stmt::EventWait { event, stmt } => {
                h.write_u8(10);
                event.hash_structure(h);
                stmt.hash_structure(h);
            }
            Stmt::SysCall { name, args } => {
                h.write_u8(11);
                h.write_str(name);
                args.hash_structure(h);
            }
            Stmt::Empty => h.write_u8(12),
        }
    }
}

impl StructuralHash for CaseArm {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        self.labels.hash_structure(h);
        self.body.hash_structure(h);
    }
}

impl StructuralHash for SysArg {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            SysArg::Str(s) => {
                h.write_u8(0);
                h.write_str(s);
            }
            SysArg::Expr(e) => {
                h.write_u8(1);
                e.hash_structure(h);
            }
        }
    }
}

impl StructuralHash for LValue {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            LValue::Ident(n) => {
                h.write_u8(0);
                h.write_str(n);
            }
            LValue::Bit(n, i) => {
                h.write_u8(1);
                h.write_str(n);
                i.hash_structure(h);
            }
            LValue::Part(n, msb, lsb) => {
                h.write_u8(2);
                h.write_str(n);
                h.write_i64(*msb);
                h.write_i64(*lsb);
            }
            LValue::IndexedPart(n, base, width) => {
                h.write_u8(3);
                h.write_str(n);
                base.hash_structure(h);
                h.write_usize(*width);
            }
            LValue::Concat(parts) => {
                h.write_u8(4);
                parts.hash_structure(h);
            }
        }
    }
}

impl StructuralHash for Expr {
    fn hash_structure(&self, h: &mut FingerprintHasher) {
        match self {
            Expr::Literal { value, signed } => {
                h.write_u8(0);
                value.hash_structure(h);
                h.write_bool(*signed);
            }
            Expr::Ident(n) => {
                h.write_u8(1);
                h.write_str(n);
            }
            Expr::Unary(op, e) => {
                h.write_u8(2);
                op.hash_structure(h);
                e.hash_structure(h);
            }
            Expr::Binary(op, a, b) => {
                h.write_u8(3);
                op.hash_structure(h);
                a.hash_structure(h);
                b.hash_structure(h);
            }
            Expr::Ternary(c, a, b) => {
                h.write_u8(4);
                c.hash_structure(h);
                a.hash_structure(h);
                b.hash_structure(h);
            }
            Expr::Concat(es) => {
                h.write_u8(5);
                es.hash_structure(h);
            }
            Expr::Repl(n, e) => {
                h.write_u8(6);
                h.write_usize(*n);
                e.hash_structure(h);
            }
            Expr::Bit(n, i) => {
                h.write_u8(7);
                h.write_str(n);
                i.hash_structure(h);
            }
            Expr::Part(n, msb, lsb) => {
                h.write_u8(8);
                h.write_str(n);
                h.write_i64(*msb);
                h.write_i64(*lsb);
            }
            Expr::IndexedPart(n, base, width) => {
                h.write_u8(9);
                h.write_str(n);
                base.hash_structure(h);
                h.write_usize(*width);
            }
            Expr::SysFunc(name, args) => {
                h.write_u8(10);
                h.write_str(name);
                args.hash_structure(h);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Test-only oracles: the first-generation rendering hashes. They define
// "distinguishable" for the differential suite; nothing on a cache-key
// path may call them (enforced by a source-scan test in `tbgen`).
// ---------------------------------------------------------------------

/// An [`fmt::Write`] sink that folds everything written into an FNV-1a
/// state, so `Debug`/`Display` streams can be hashed without allocating
/// the intermediate string.
#[derive(Clone, Copy, Debug)]
pub struct FnvWriter(u64);

impl FnvWriter {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        FnvWriter::new()
    }
}

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// Stable hash of a value's `Debug` rendering. **Test-only oracle**: the
/// rendering costs as much as the formatting machinery, so cache probes
/// use [`StructuralHash`] fingerprints instead; this survives as the
/// reference the differential suite compares visitor fingerprints
/// against.
pub fn debug_hash<T: fmt::Debug>(value: &T) -> u64 {
    let mut w = FnvWriter::new();
    write!(w, "{value:?}").expect("FnvWriter never fails");
    w.finish()
}

/// Stable hash of a parsed source file's pretty-print rendering.
/// **Test-only oracle** (see [`debug_hash`]): two sources that
/// pretty-print identically are structurally identical (the printer is a
/// parser fixpoint — see `tests/roundtrip_props.rs`), which makes this
/// the canonical "do these designs differ?" reference for the
/// fingerprint differential suite. Cache keys use
/// [`SourceFile::fingerprint`].
pub fn structural_hash(file: &SourceFile) -> u64 {
    fnv1a64(print_file(file).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str =
        "module inc(input [3:0] a, output [3:0] y);\nassign y = a + 4'd1;\nendmodule\n";

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_matches_slice_hash() {
        let mut w = FnvWriter::new();
        use std::fmt::Write as _;
        w.write_str("foobar").unwrap();
        assert_eq!(w.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn hasher_bytes_match_slice_hash() {
        let mut h = FingerprintHasher::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), Fingerprint(fnv1a64(b"foobar")));
    }

    #[test]
    fn fingerprint_is_formatting_insensitive() {
        let a = parse(SRC).expect("parses");
        let b = parse(&SRC.replace('\n', "  \n ")).expect("parses");
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_separates_different_designs() {
        let a = parse(SRC).expect("parses");
        let b = parse(&SRC.replace("a + 4'd1", "a - 4'd1")).expect("parses");
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn oracle_hash_is_formatting_insensitive() {
        let a = parse(SRC).expect("parses");
        let b = parse(&SRC.replace('\n', "  \n ")).expect("parses");
        assert_eq!(structural_hash(&a), structural_hash(&b));
    }

    #[test]
    fn strings_are_length_prefixed() {
        // ("ab", "c") vs ("a", "bc"): same byte stream without prefixes.
        let a = ("ab".to_string(), "c".to_string());
        let b = ("a".to_string(), "bc".to_string());
        assert_ne!(
            StructuralHash::fingerprint(&a),
            StructuralHash::fingerprint(&b)
        );
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Fingerprint(0xab)), "00000000000000ab");
    }
}
