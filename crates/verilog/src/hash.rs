//! Stable structural hashing for cache keys.
//!
//! `std::collections::hash_map::DefaultHasher` makes no cross-version
//! stability promise, so content-addressed caches (the harness's
//! simulation cache) key on an explicit FNV-1a implementation instead.
//! Two sources that pretty-print identically are structurally identical
//! (the printer is a parser fixpoint — see `tests/roundtrip_props.rs`),
//! which makes the print stream the canonical form to hash.

use crate::ast::SourceFile;
use crate::pretty::print_file;
use std::fmt::{self, Write};

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An [`fmt::Write`] sink that folds everything written into an FNV-1a
/// state, so `Debug`/`Display` streams can be hashed without allocating
/// the intermediate string.
#[derive(Clone, Copy, Debug)]
pub struct FnvWriter(u64);

impl FnvWriter {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    /// The accumulated hash.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        FnvWriter::new()
    }
}

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(())
    }
}

/// Stable hash of a value's `Debug` rendering.
pub fn debug_hash<T: fmt::Debug>(value: &T) -> u64 {
    let mut w = FnvWriter::new();
    write!(w, "{value:?}").expect("FnvWriter never fails");
    w.finish()
}

/// Stable structural hash of a parsed source file: equal for files that
/// pretty-print identically, independent of the process or platform.
pub fn structural_hash(file: &SourceFile) -> u64 {
    fnv1a64(print_file(file).as_bytes())
}

impl SourceFile {
    /// Stable structural hash of this file (see [`structural_hash`]).
    pub fn structural_hash(&self) -> u64 {
        structural_hash(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str =
        "module inc(input [3:0] a, output [3:0] y);\nassign y = a + 4'd1;\nendmodule\n";

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_matches_slice_hash() {
        let mut w = FnvWriter::new();
        use std::fmt::Write as _;
        w.write_str("foobar").unwrap();
        assert_eq!(w.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn hash_is_formatting_insensitive() {
        let a = parse(SRC).expect("parses");
        let b = parse(&SRC.replace('\n', "  \n ")).expect("parses");
        assert_eq!(a.structural_hash(), b.structural_hash());
    }

    #[test]
    fn hash_separates_different_designs() {
        let a = parse(SRC).expect("parses");
        let b = parse(&SRC.replace("a + 4'd1", "a - 4'd1")).expect("parses");
        assert_ne!(a.structural_hash(), b.structural_hash());
    }
}
