//! Lint robustness and sensitivity.
//!
//! Two properties back the `--lint` gate:
//!
//! 1. **Totality** — `lint_file` is called by the harness on whatever
//!    the parser accepts, including corrupted and mutated sources; it
//!    must never panic (a panicking lint pass would misclassify an
//!    ordinary dirty input as a harness crash).
//! 2. **Sensitivity** — for every rule in the closed taxonomy there is
//!    a seeded fixture (a driver/width/reset-altering mutation of a
//!    clean module) that the rule catches. A rule that fires on nothing
//!    is dead weight in the taxonomy.

use correctbench_verilog::corrupt::corrupt_source;
use correctbench_verilog::lint_file;
use correctbench_verilog::mutate::mutate_module;
use correctbench_verilog::parser::parse;
use correctbench_verilog::Rule;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corrupted golden sources that still parse never panic the lint
    /// pass, and its report is deterministic for the same input.
    #[test]
    fn lint_never_panics_on_corrupted_sources(problem_idx in 0usize..156, seed: u64, rounds in 1usize..4) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = p.golden_rtl.clone();
        for _ in 0..rounds {
            src = corrupt_source(&src, &mut rng);
        }
        if let Ok(file) = parse(&src) {
            let a = lint_file(&file);
            let b = lint_file(&file);
            prop_assert_eq!(a.signature(), b.signature(), "lint is not pure");
        }
    }

    /// AST-level mutants (the Eval2 population) never panic the lint
    /// pass either — these always parse, so lint sees every one.
    #[test]
    fn lint_never_panics_on_mutants(problem_idx in 0usize..156, seed: u64) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx];
        let mut file = parse(&p.golden_rtl).expect("golden RTL parses");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1 + rng.gen_range(0..3usize);
        if let Some(m) = file.module_mut(&p.name) {
            mutate_module(m, &mut rng, n);
        }
        let _ = lint_file(&file);
    }
}

/// One seeded fixture per rule: a clean base module plus the minimal
/// driver/width/control mutation that the rule exists to catch.
#[test]
fn every_rule_catches_its_seeded_fixture() {
    let fixtures: [(Rule, &str); 8] = [
        (
            Rule::MultipleDrivers,
            "module m(input a, b, output y);\nassign y = a;\nassign y = b;\nendmodule",
        ),
        (
            Rule::LatchInferred,
            "module m(input s, input a, output reg y);\nalways @(*) begin if (s) y = a; end\nendmodule",
        ),
        (
            Rule::BlockingNonblockingMix,
            "module m(input clk, input a, output reg y);\nreg t;\n\
             always @(posedge clk) begin t = a; y <= t; end\nendmodule",
        ),
        (
            Rule::CombLoop,
            "module m(input a, output x, output y);\nassign x = y & a;\nassign y = x | a;\nendmodule",
        ),
        (
            Rule::WidthMismatch,
            "module m(input [7:0] a, b, output [3:0] y);\nassign y = a + b;\nendmodule",
        ),
        (
            Rule::UndrivenSignal,
            "module m(input a, output y);\nwire t;\nassign y = t & a;\nendmodule",
        ),
        (
            Rule::UnusedSignal,
            "module m(input a, input b, output y);\nassign y = a;\nendmodule",
        ),
        (
            Rule::NonResetRegister,
            "module m(input clk, input d, output reg q);\nalways @(posedge clk) q <= d;\nendmodule",
        ),
    ];
    for (rule, src) in fixtures {
        let file = parse(src).expect("fixture parses");
        let report = lint_file(&file);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule),
            "rule {} missed its fixture:\n{src}\nreport: {:?}",
            rule.name(),
            report.diagnostics
        );
    }
}

/// A mutation that deletes a register's driver is caught by the
/// dataflow rules on a real dataset problem — the lint signal the
/// AutoEval static pre-screen leans on.
#[test]
fn driver_deleting_mutation_is_caught_on_a_dataset_problem() {
    let p = correctbench_dataset::problem("counter_8").expect("problem");
    let clean = parse(&p.golden_rtl).expect("golden RTL parses");
    let clean_sig = lint_file(&clean).signature();
    let mut mutant = clean.clone();
    let m = mutant.module_mut(&p.name).expect("module");
    for item in &mut m.items {
        if let correctbench_verilog::ast::Item::Always(always) = item {
            always.body = correctbench_verilog::ast::Stmt::Block(Vec::new());
        }
    }
    let report = lint_file(&mutant);
    assert!(
        !report.is_clean(),
        "an emptied always block must lint dirty"
    );
    assert_ne!(
        report.signature(),
        clean_sig,
        "signature must distinguish the mutant"
    );
}
