//! Property tests: `LogicVec` arithmetic and bit manipulation agree with
//! native integer semantics on fully-known values of width ≤ 64.

use correctbench_verilog::logic::{Bit, LogicVec};
use proptest::prelude::*;

fn mask(width: usize) -> u64 {
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

proptest! {
    #[test]
    fn add_matches_native(a: u64, b: u64, width in 1usize..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.add(&vb).to_u64(), Some((a & m).wrapping_add(b & m) & m));
    }

    #[test]
    fn sub_matches_native(a: u64, b: u64, width in 1usize..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.sub(&vb).to_u64(), Some((a & m).wrapping_sub(b & m) & m));
    }

    #[test]
    fn mul_matches_native(a: u64, b: u64, width in 1usize..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.mul(&vb).to_u64(), Some((a & m).wrapping_mul(b & m) & m));
    }

    #[test]
    fn divrem_matches_native(a: u64, b in 1u64.., width in 1usize..=64) {
        let m = mask(width);
        let (a, b) = (a & m, b & m);
        prop_assume!(b != 0);
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.div(&vb).to_u64(), Some(a / b));
        prop_assert_eq!(va.rem(&vb).to_u64(), Some(a % b));
    }

    #[test]
    fn bitwise_matches_native(a: u64, b: u64, width in 1usize..=64) {
        let m = mask(width);
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.and(&vb).to_u64(), Some(a & b & m));
        prop_assert_eq!(va.or(&vb).to_u64(), Some((a | b) & m));
        prop_assert_eq!(va.xor(&vb).to_u64(), Some((a ^ b) & m));
        prop_assert_eq!(va.not().to_u64(), Some(!a & m));
    }

    #[test]
    fn shifts_match_native(a: u64, n in 0u64..80, width in 1usize..=64) {
        let m = mask(width);
        let a = a & m;
        let va = LogicVec::from_u64(width, a);
        let vn = LogicVec::from_u64(7, n);
        let shl = if n as usize >= width { 0 } else { (a << n) & m };
        let shr = if n as usize >= width { 0 } else { a >> n };
        prop_assert_eq!(va.shl(&vn).to_u64(), Some(shl));
        prop_assert_eq!(va.shr(&vn).to_u64(), Some(shr));
    }

    #[test]
    fn ashr_matches_native(a: u64, n in 0u64..80, width in 1usize..=63) {
        let m = mask(width);
        let a = a & m;
        let va = LogicVec::from_u64(width, a);
        let vn = LogicVec::from_u64(7, n);
        // sign-extend a to i64 at `width`, shift, re-mask
        let sign = (a >> (width - 1)) & 1;
        let ext = if sign == 1 { a | !m } else { a };
        let shifted = ((ext as i64) >> n.min(63)) as u64 & m;
        prop_assert_eq!(va.ashr(&vn).to_u64(), Some(shifted));
    }

    #[test]
    fn comparison_matches_native(a: u64, b: u64, width in 1usize..=64) {
        let m = mask(width);
        let (a, b) = (a & m, b & m);
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.lt(&vb, false) == Bit::One, a < b);
        prop_assert_eq!(va.eq_logic(&vb) == Bit::One, a == b);
    }

    #[test]
    fn signed_comparison_matches_native(a: u64, b: u64, width in 2usize..=63) {
        let m = mask(width);
        let (a, b) = (a & m, b & m);
        let sext = |v: u64| {
            let sign = (v >> (width - 1)) & 1;
            if sign == 1 { (v | !m) as i64 } else { v as i64 }
        };
        let va = LogicVec::from_u64(width, a);
        let vb = LogicVec::from_u64(width, b);
        prop_assert_eq!(va.lt(&vb, true) == Bit::One, sext(a) < sext(b));
    }

    #[test]
    fn concat_slice_roundtrip(hi: u64, lo: u64, wh in 1usize..=32, wl in 1usize..=32) {
        let vh = LogicVec::from_u64(wh, hi);
        let vl = LogicVec::from_u64(wl, lo);
        let c = vh.concat(&vl);
        prop_assert_eq!(c.width(), wh + wl);
        prop_assert_eq!(c.slice(0, wl), vl);
        prop_assert_eq!(c.slice(wl, wh), vh);
    }

    #[test]
    fn repeat_width_and_content(v: u64, w in 1usize..=16, n in 1usize..=5) {
        let lv = LogicVec::from_u64(w, v);
        let r = lv.repeat(n);
        prop_assert_eq!(r.width(), w * n);
        for k in 0..n {
            prop_assert_eq!(r.slice(k * w, w), lv.clone());
        }
    }

    #[test]
    fn extend_preserves_value(v: u64, w in 1usize..=32, extra in 0usize..=32) {
        let m = mask(w);
        let lv = LogicVec::from_u64(w, v);
        prop_assert_eq!(lv.zero_extend(w + extra).to_u64(), Some(v & m));
        let signed = lv.sign_extend(w + extra);
        let sign = ((v & m) >> (w - 1)) & 1;
        let expect = if sign == 1 && extra > 0 {
            (v & m) | (mask(w + extra) & !m)
        } else {
            v & m
        };
        prop_assert_eq!(signed.to_u64(), Some(expect & mask(w + extra)));
    }

    #[test]
    fn reductions_match_native(v: u64, w in 1usize..=64) {
        let m = mask(w);
        let v = v & m;
        let lv = LogicVec::from_u64(w, v);
        prop_assert_eq!(lv.reduce_and() == Bit::One, v == m);
        prop_assert_eq!(lv.reduce_or() == Bit::One, v != 0);
        prop_assert_eq!(lv.reduce_xor() == Bit::One, v.count_ones() % 2 == 1);
    }

    #[test]
    fn decimal_string_roundtrips(v: u64, w in 1usize..=64) {
        let m = mask(w);
        let lv = LogicVec::from_u64(w, v);
        prop_assert_eq!(lv.to_decimal_string(), (v & m).to_string());
    }

    #[test]
    fn x_poisoning_is_total(width in 1usize..=64, v: u64) {
        let x = LogicVec::filled_x(width);
        let known = LogicVec::from_u64(width, v);
        prop_assert!(x.add(&known).is_fully_unknown());
        prop_assert!(known.mul(&x).is_fully_unknown());
        prop_assert_eq!(known.eq_logic(&x), Bit::X);
    }
}
