//! Differential properties of the visitor fingerprint against the
//! rendering-hash oracles it replaced on every cache-key path.
//!
//! The retired scheme — `structural_hash` (FNV over the pretty-print)
//! and `debug_hash` (FNV over the `Debug` rendering) — survives purely
//! as the *oracle* defining what "distinguishable designs" means. The
//! visitor fingerprint must be:
//!
//! 1. **stable across re-parses** — parsing the same (or a reprinted)
//!    source yields the same fingerprint, so content addressing works
//!    across processes and pipeline stages; and
//! 2. **at least as discriminating** — every design pair the
//!    pretty-print hash separates, the fingerprint separates too, so
//!    migrating the caches cannot introduce aliasing the old keys did
//!    not have.
//!
//! The corpus is the real workload: all 156 golden RTLs plus seeded
//! semantic mutants of each.

use correctbench_verilog::hash::{structural_hash, Fingerprint, StructuralHash};
use correctbench_verilog::mutate::mutate_module;
use correctbench_verilog::parser::parse;
use correctbench_verilog::pretty::print_file;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

#[test]
fn fingerprint_is_stable_across_reparses_for_all_golden_rtl() {
    for p in correctbench_dataset::all_problems() {
        let a = parse(&p.golden_rtl).expect("golden parses");
        let b = parse(&p.golden_rtl).expect("golden parses");
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{}: re-parse drift",
            p.name
        );
        let reprinted = parse(&print_file(&a)).expect("reprint parses");
        assert_eq!(
            a.fingerprint(),
            reprinted.fingerprint(),
            "{}: print-reparse drift",
            p.name
        );
    }
}

/// Every design pair the pretty-print oracle distinguishes, the visitor
/// fingerprint distinguishes: across the whole golden corpus plus
/// mutants, no fingerprint may map to two distinct oracle hashes.
#[test]
fn fingerprint_distinguishes_every_pair_the_oracle_does() {
    let mut seen: HashMap<Fingerprint, (u64, String)> = HashMap::new();
    let mut designs = 0usize;
    for p in correctbench_dataset::all_problems() {
        let golden = parse(&p.golden_rtl).expect("golden parses");
        let mut variants = vec![golden.clone()];
        for seed in 0..4u64 {
            let mut file = golden.clone();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xf1f0);
            if let Some(m) = file.module_mut(&p.name) {
                mutate_module(m, &mut rng, 1 + (seed as usize % 2));
            }
            variants.push(file);
        }
        for file in variants {
            designs += 1;
            let fp = file.fingerprint();
            let oracle = structural_hash(&file);
            match seen.get(&fp) {
                None => {
                    seen.insert(fp, (oracle, p.name.clone()));
                }
                Some((prev, origin)) => assert_eq!(
                    *prev, oracle,
                    "fingerprint {fp} aliases designs the oracle separates \
                     (first seen at {origin}, again at {})",
                    p.name
                ),
            }
        }
    }
    assert!(designs > 300, "corpus unexpectedly small: {designs}");
}

/// The cached fingerprint is per value: clones recompute (they are the
/// raw material of mutants), and `module_mut` invalidates.
#[test]
fn fingerprint_cache_does_not_survive_cloning_or_mutation() {
    let p = correctbench_dataset::problem("alu_8").expect("problem");
    let golden = parse(&p.golden_rtl).expect("golden parses");
    let before = golden.fingerprint();

    // Clone *after* the original computed its fingerprint, then mutate
    // the clone: the clone must report its own, different identity.
    let mut mutant = golden.clone();
    let mut rng = StdRng::seed_from_u64(99);
    mutate_module(mutant.module_mut(&p.name).expect("module"), &mut rng, 2);
    assert_ne!(mutant, golden, "mutation was a no-op");
    assert_ne!(
        mutant.fingerprint(),
        before,
        "clone inherited a stale fingerprint"
    );
    assert_eq!(golden.fingerprint(), before, "original drifted");

    // In-place mutation through module_mut invalidates the cache.
    let mut file = parse(&p.golden_rtl).expect("golden parses");
    let original = file.fingerprint();
    let mut rng = StdRng::seed_from_u64(7);
    mutate_module(file.module_mut(&p.name).expect("module"), &mut rng, 2);
    assert_ne!(
        file.fingerprint(),
        original,
        "module_mut left a stale fingerprint behind"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fingerprints of mutants are stable across print-reparse, and
    /// agree with the oracle's verdict against their own golden design.
    #[test]
    fn mutant_fingerprints_track_the_oracle(problem_idx: usize, seed: u64, n in 1usize..4) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx % problems.len()];
        let golden = parse(&p.golden_rtl).expect("golden parses");
        let mut file = golden.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(m) = file.module_mut(&p.name) {
            mutate_module(m, &mut rng, n);
        }
        // Stability: the mutant's reprint re-parses to the same fingerprint.
        let reparsed = parse(&print_file(&file)).expect("mutant reparses");
        prop_assert_eq!(file.fingerprint(), reparsed.fingerprint());
        // Discrimination: oracle-separated pairs stay separated. (The
        // converse may not hold — the printer normalizes formatting-
        // irrelevant details — so only this direction is required.)
        if structural_hash(&file) != structural_hash(&golden) {
            prop_assert_ne!(file.fingerprint(), golden.fingerprint());
        }
        // Fresh trait computation matches the cached inherent one.
        prop_assert_eq!(file.fingerprint(), StructuralHash::fingerprint(&file));
    }
}
