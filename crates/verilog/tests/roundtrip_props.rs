//! Property tests over real dataset-shaped modules: pretty-printing is a
//! parser fixpoint, and stays one under arbitrary semantic mutation.

use correctbench_verilog::mutate::mutate_module;
use correctbench_verilog::parser::parse;
use correctbench_verilog::pretty::print_file;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A corpus of golden sources spanning every construct the printer and
/// parser must agree on (pulled from the dataset at test time so the
/// corpus tracks the real workload).
fn corpus() -> Vec<String> {
    correctbench_dataset::all_problems()
        .into_iter()
        .map(|p| p.golden_rtl)
        .collect()
}

#[test]
fn print_is_parser_fixpoint_for_all_golden_rtl() {
    for src in corpus() {
        let f1 = parse(&src).expect("golden parses");
        let p1 = print_file(&f1);
        let f2 = parse(&p1).unwrap_or_else(|e| panic!("reprint does not parse: {e}\n{p1}"));
        let p2 = print_file(&f2);
        assert_eq!(p1, p2, "printer not a fixpoint for:\n{src}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn mutants_roundtrip(problem_idx in 0usize..156, seed: u64, n in 1usize..4) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx];
        let mut file = parse(&p.golden_rtl).expect("golden parses");
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(m) = file.module_mut(&p.name) {
            mutate_module(m, &mut rng, n);
        }
        let printed = print_file(&file);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("mutant does not reparse: {e}\n{printed}"));
        let reprinted = print_file(&reparsed);
        prop_assert_eq!(printed, reprinted);
    }

    #[test]
    fn mutants_still_elaborate(problem_idx in 0usize..156, seed: u64) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx];
        let mut file = parse(&p.golden_rtl).expect("golden parses");
        let mut rng = StdRng::seed_from_u64(seed);
        if let Some(m) = file.module_mut(&p.name) {
            mutate_module(m, &mut rng, 2);
        }
        let printed = print_file(&file);
        let reparsed = parse(&printed).expect("mutant parses");
        correctbench_verilog::elaborate(&reparsed, &p.name)
            .unwrap_or_else(|e| panic!("mutant does not elaborate: {e}\n{printed}"));
    }
}
