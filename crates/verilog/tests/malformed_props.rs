//! Malformed-input robustness: `parse` and `elaborate` must return
//! `Err`, never panic, no matter how broken the RTL is. Generated code
//! reaches the front end unfiltered, so every input-dependent `unwrap`,
//! slice, or arithmetic overflow on these paths is a harness-killing
//! bug (one panicking job would tear down a whole run without the
//! fault-isolation layer — and even with it, a panic here misclassifies
//! an ordinary syntax failure as a crash).

use correctbench_verilog::corrupt::corrupt_source;
use correctbench_verilog::parser::parse;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parses and, when parsing succeeds, elaborates every module of `src`.
/// The return values are irrelevant — reaching the end without a panic
/// is the property.
fn front_end_total(src: &str) {
    if let Ok(file) = parse(src) {
        for module in &file.modules {
            let name = module.name.clone();
            let _ = correctbench_verilog::elaborate(&file, &name);
        }
    }
}

/// Adversarial regressions: inputs that previously could overflow
/// debug-build arithmetic or request absurd allocations.
#[test]
fn extreme_range_bounds_are_rejected_not_panics() {
    for src in [
        // i64::MIN negation / i64 subtraction overflow candidates.
        "module m(input [-9223372036854775808:0] a); endmodule",
        "module m(input [9223372036854775807:-1] a); endmodule",
        "module m(input [18446744073709551615:0] a); endmodule",
        // Bounds just past the accepted 2^31 clamp.
        "module m(input [2147483649:0] a); endmodule",
        "module m(input [0:-2147483649] a); endmodule",
    ] {
        assert!(parse(src).is_err(), "accepted extreme range: {src}");
    }
}

#[test]
fn giant_widths_fail_elaboration_cleanly() {
    // Parses (bounds are within ±2^31) but must not allocate gigabits.
    let src = "module m(input [2000000000:0] a, output y); assign y = a[0]; endmodule";
    let file = parse(src).expect("range bounds are in parser range");
    assert!(correctbench_verilog::elaborate(&file, "m").is_err());
}

#[test]
fn nested_replication_width_overflow_is_an_error() {
    // 4096^6 > 2^64: the width product must be checked, not wrapped.
    let inner = "a";
    let mut expr = inner.to_string();
    for _ in 0..6 {
        expr = format!("{{4096{{{expr}}}}}");
    }
    let src = format!("module m(input a, output y); assign y = |{expr}; endmodule");
    let file = parse(&src).expect("replication nest parses");
    assert!(correctbench_verilog::elaborate(&file, "m").is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corrupted golden sources (the realistic malformed population:
    /// truncations, dropped tokens, mangled identifiers) never panic
    /// the front end, however many corruption rounds are stacked.
    #[test]
    fn corrupted_golden_rtl_never_panics(problem_idx in 0usize..156, seed: u64, rounds in 1usize..4) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut src = p.golden_rtl.clone();
        for _ in 0..rounds {
            src = corrupt_source(&src, &mut rng);
        }
        front_end_total(&src);
    }

    /// Byte-splice fuzzing: random edits (insert/delete/replace of short
    /// ASCII runs) at random offsets of a golden source. Broader than the
    /// realistic corruptions — this is what exercises lexer edge cases.
    #[test]
    fn byte_spliced_golden_rtl_never_panics(problem_idx in 0usize..156, seed: u64) {
        let problems = correctbench_dataset::all_problems();
        let p = &problems[problem_idx];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0051_1ce5);
        let mut src = p.golden_rtl.clone().into_bytes();
        for _ in 0..rng.gen_range(1..6) {
            let at = rng.gen_range(0..=src.len());
            match rng.gen_range(0..3u8) {
                0 => {
                    // Insert a short printable run.
                    let n = rng.gen_range(1..8);
                    for i in 0..n {
                        src.insert((at + i).min(src.len()), rng.gen_range(0x20..0x7f));
                    }
                }
                1 => {
                    // Delete a short run.
                    let n = rng.gen_range(1usize..8).min(src.len().saturating_sub(at));
                    src.drain(at..at + n);
                }
                _ => {
                    if at < src.len() {
                        src[at] = rng.gen_range(0x20..0x7f);
                    }
                }
            }
        }
        let src = String::from_utf8_lossy(&src);
        front_end_total(&src);
    }
}
