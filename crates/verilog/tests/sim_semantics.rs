//! Regression battery for event-simulation semantics: scheduling regions,
//! non-blocking assignment, sensitivity, selects, and timing corners that
//! generated testbenches rely on.

use correctbench_verilog::run_source;

fn lines(src: &str) -> Vec<String> {
    run_source(src, "tb").expect("simulation ok").lines
}

#[test]
fn nba_reads_old_values_in_same_edge() {
    // Classic pipeline: both registers update from pre-edge values.
    let out = lines(
        "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg [3:0] a, b;\nalways @(posedge clk) begin a <= 4'd1; b <= a; end\ninitial begin\na = 4'd9;\n#6;\n$display(\"a=%0d b=%0d\", a, b);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["a=1 b=9"]);
}

#[test]
fn blocking_then_nba_interleave() {
    // Blocking temp inside a clocked block is visible to later NBAs.
    let out = lines(
        "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg [3:0] t, q;\nalways @(posedge clk) begin\nt = 4'd3;\nq <= t + 4'd1;\nend\ninitial begin\n#6 $display(\"q=%0d\", q);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["q=4"]);
}

#[test]
fn two_always_blocks_nba_swap() {
    // Cross-coupled NBAs in separate blocks still swap atomically.
    let out = lines(
        "module tb;\nreg clk = 0;\nreg [3:0] x, y;\nalways @(posedge clk) x <= y;\nalways @(posedge clk) y <= x;\ninitial begin\nx = 4'd5; y = 4'd7;\n#1 clk = 1;\n#1 $display(\"x=%0d y=%0d\", x, y);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["x=7 y=5"]);
}

#[test]
fn comb_chain_settles_in_one_timestep() {
    let out = lines(
        "module tb;\nreg [7:0] a;\nwire [7:0] b, c, d;\nassign b = a + 8'd1;\nassign c = b * 8'd2;\nassign d = c - 8'd3;\ninitial begin\na = 8'd10;\n#1 $display(\"%0d\", d);\na = 8'd0;\n#1 $display(\"%0d\", d);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["19", "255"]); // (0+1)*2-3 wraps to 255
}

#[test]
fn casez_wildcard_priority() {
    let out = lines(
        "module tb;\nreg [3:0] v;\nreg [1:0] y;\nalways @(*) begin\ncasez (v)\n4'b1???: y = 2'd3;\n4'b01??: y = 2'd2;\n4'b001?: y = 2'd1;\ndefault: y = 2'd0;\nendcase\nend\ninitial begin\nv = 4'b1010; #1 $display(\"%0d\", y);\nv = 4'b0110; #1 $display(\"%0d\", y);\nv = 4'b0011; #1 $display(\"%0d\", y);\nv = 4'b0000; #1 $display(\"%0d\", y);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["3", "2", "1", "0"]);
}

#[test]
fn dynamic_bit_write_and_read() {
    let out = lines(
        "module tb;\nreg [7:0] v;\nreg [2:0] i;\ninitial begin\nv = 8'd0;\nfor (i = 0; i < 3'd7; i = i + 3'd1) begin\nv[i] = i[0];\nend\n$display(\"%b\", v);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["00101010"]);
}

#[test]
fn indexed_part_select_rw() {
    let out = lines(
        "module tb;\nreg [15:0] v;\nreg [1:0] k;\ninitial begin\nv = 16'h0000;\nk = 2'd2;\nv[k * 4 +: 4] = 4'hf;\n#1 $display(\"%h %h\", v, v[4 +: 8]);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["0f00 f0"]);
}

#[test]
fn negedge_and_multiple_events() {
    let out = lines(
        "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg [3:0] np, nn;\ninitial begin np = 0; nn = 0; end\nalways @(posedge clk) np <= np + 4'd1;\nalways @(negedge clk) nn <= nn + 4'd1;\ninitial begin\n#23 $display(\"np=%0d nn=%0d\", np, nn);\n$finish;\nend\nendmodule",
    );
    // posedges at 5,15; negedges at 10,20.
    assert_eq!(out, vec!["np=2 nn=2"]);
}

#[test]
fn wait_on_level_change() {
    let out = lines(
        "module tb;\nreg s = 0;\ninitial #7 s = 1;\ninitial begin\n@(s);\n$display(\"t=%0d\", $time);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["t=7"]);
}

#[test]
fn while_loop_in_initial() {
    let out = lines(
        "module tb;\nreg [7:0] n, acc;\ninitial begin\nn = 8'd5; acc = 8'd0;\nwhile (n > 8'd0) begin\nacc = acc + n;\nn = n - 8'd1;\nend\n$display(\"%0d\", acc);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["15"]);
}

#[test]
fn signed_arithmetic_in_expressions() {
    let out = lines(
        "module tb;\nreg signed [7:0] a;\nreg signed [7:0] b;\nwire signed [7:0] q;\nassign q = a / b;\ninitial begin\na = -8'd7; b = 8'd2;\n#1 $display(\"%0d\", $unsigned(q));\n$finish;\nend\nendmodule",
    );
    // -7/2 = -3 -> 0xFD = 253 unsigned.
    assert_eq!(out, vec!["253"]);
}

#[test]
fn concat_in_port_connection() {
    let out = lines(
        "module take(input [7:0] x, output [7:0] y);\nassign y = x;\nendmodule\nmodule tb;\nreg [3:0] hi, lo;\nwire [7:0] y;\ntake u(.x({hi, lo}), .y(y));\ninitial begin\nhi = 4'ha; lo = 4'h5;\n#1 $display(\"%h\", y);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["a5"]);
}

#[test]
fn output_to_concat_lvalue() {
    let out = lines(
        "module split(input [7:0] x, output [7:0] y);\nassign y = x;\nendmodule\nmodule tb;\nreg [7:0] v;\nwire [3:0] hi, lo;\nsplit u(.x(v), .y({hi, lo}));\ninitial begin\nv = 8'h3c;\n#1 $display(\"%h %h\", hi, lo);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["3 c"]);
}

#[test]
fn x_propagates_through_uninitialised_reg() {
    let out = lines(
        "module tb;\nreg [3:0] q;\nwire [3:0] y;\nassign y = q + 4'd1;\ninitial begin\n#1 $display(\"%0d\", y);\nq = 4'd1;\n#1 $display(\"%0d\", y);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["x", "2"]);
}

#[test]
fn display_without_format_string() {
    let out = lines(
        "module tb;\nreg [3:0] a;\ninitial begin\na = 4'd9;\n#1 $display(a);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["9"]);
}

#[test]
fn finish_stops_clock_immediately() {
    let out = run_source(
        "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\ninitial #12 $finish;\nendmodule",
        "tb",
    )
    .expect("run");
    assert!(out.finished);
    assert_eq!(out.end_time, 12);
}

#[test]
fn repeat_with_dynamic_count() {
    let out = lines(
        "module tb;\nreg [3:0] n;\nreg [7:0] acc;\ninitial begin\nn = 4'd4; acc = 8'd0;\nrepeat (n) acc = acc + 8'd2;\n$display(\"%0d\", acc);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["8"]);
}

#[test]
fn sequential_reset_released_mid_stream() {
    let out = lines(
        "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nreg rst;\nreg [3:0] q;\nalways @(posedge clk) begin\nif (rst) q <= 4'd0; else q <= q + 4'd1;\nend\ninitial begin\nrst = 1;\n#12 rst = 0;\n#20 rst = 1;\n#10 rst = 0;\n#18 $display(\"q=%0d\", q);\n$finish;\nend\nendmodule",
    );
    // Edges: 5(r),15,25,35(r),45,55 -> after reset at 35, counts at 45,55 -> q=2.
    assert_eq!(out, vec!["q=2"]);
}

#[test]
fn parameterised_state_machine() {
    let out = lines(
        "module tb;\nreg clk = 0;\nalways #5 clk = ~clk;\nparameter IDLE = 2'd0;\nparameter RUN = 2'd2;\nreg [1:0] s;\ninitial s = IDLE;\nalways @(posedge clk) begin\nif (s == IDLE) s <= RUN;\nelse s <= IDLE;\nend\ninitial begin\n#6 $display(\"%0d\", s);\n#10 $display(\"%0d\", s);\n$finish;\nend\nendmodule",
    );
    assert_eq!(out, vec!["2", "0"]);
}
