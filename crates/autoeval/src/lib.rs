//! AutoEval: the paper's testbench evaluation harness (Table II).
//!
//! | level | definition |
//! |---|---|
//! | Failed | codes have syntax errors |
//! | Eval0  | codes have no syntax errors |
//! | Eval1  | passed Eval0; the testbench reports *passed* with the golden RTL as DUT |
//! | Eval2  | passed Eval1; over 10 mutants of the golden RTL, the testbench's pass/fail reports agree with the golden testbench's on ≥80% |
//!
//! Eval2 is the paper's headline "pass ratio" metric: it measures whether
//! a generated testbench *discriminates* like a trusted one, not merely
//! whether it flatters the golden design.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use correctbench_checker::compile_module;
use correctbench_dataset::Problem;
use correctbench_llm::CheckerArtifact;
use correctbench_tbgen::{
    abort_job, acquire_session, generate_driver, generate_scenarios, AbortKind, GoldenArtifacts,
    GoldenKey, ScenarioResult, TbError, TbRun,
};
use correctbench_verilog::mutate::mutate_module;
use correctbench_verilog::pretty::print_file;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A testbench as AutoEval sees it (mirrors `correctbench::HybridTb`
/// without depending on the core crate, so evaluation stays a leaf).
#[derive(Clone, Debug)]
pub struct EvalTb {
    /// The scenario list.
    pub scenarios: correctbench_tbgen::ScenarioSet,
    /// Driver source.
    pub driver: String,
    /// Checker artifact.
    pub checker: CheckerArtifact,
}

/// The evaluation outcome, ordered `Failed < Eval0 < Eval1 < Eval2`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EvalLevel {
    /// Syntax errors in driver or checker.
    Failed,
    /// Syntactically sound.
    Eval0,
    /// Reports "passed" on the golden DUT.
    Eval1,
    /// Mutant reports agree with the golden testbench on ≥80% of mutants.
    Eval2,
}

impl EvalLevel {
    /// All levels in ascending order.
    pub const ALL: [EvalLevel; 4] = [
        EvalLevel::Failed,
        EvalLevel::Eval0,
        EvalLevel::Eval1,
        EvalLevel::Eval2,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EvalLevel::Failed => "Failed",
            EvalLevel::Eval0 => "Eval0",
            EvalLevel::Eval1 => "Eval1",
            EvalLevel::Eval2 => "Eval2",
        }
    }
}

/// Number of mutant DUTs used by Eval2 (paper: 10).
pub const EVAL2_MUTANTS: usize = 10;

/// Required report-agreement fraction (paper: 80%).
pub const EVAL2_AGREEMENT: f64 = 0.8;

/// The testbench's own pass/fail report from one run: "passed" means no
/// scenario *failed* (missing scenarios cannot fail a report — the
/// testbench does not know what it does not test, which is exactly why
/// Eval1 is not exhaustive).
fn tb_report(run: Result<TbRun, TbError>) -> Option<bool> {
    match run {
        Ok(run) => {
            let any_seen = run
                .results
                .iter()
                .any(|r| !matches!(r, ScenarioResult::Missing));
            if !any_seen {
                return None;
            }
            Some(
                !run.results
                    .iter()
                    .any(|r| matches!(r, ScenarioResult::Fail)),
            )
        }
        Err(_) => None,
    }
}

/// Parses source the dataset invariant (or the golden generator)
/// guarantees is well-formed. If the invariant is ever violated, the
/// job aborts with a structured `parse_error` instead of panicking the
/// worker — one bad fixture must not read as a harness crash.
fn parse_trusted(src: &str, what: &str) -> correctbench_verilog::ast::SourceFile {
    match correctbench_verilog::parse(src) {
        Ok(file) => file,
        Err(e) => {
            eprintln!("trusted {what} failed to parse: {e}");
            abort_job(AbortKind::ParseError)
        }
    }
}

/// Generates the `EVAL2_MUTANTS` mutant DUT sources for a problem,
/// deterministic in `seed`. Every mutant parses and elaborates.
pub fn eval2_mutants(problem: &Problem, seed: u64) -> Vec<String> {
    let golden = parse_trusted(&problem.golden_rtl, "golden RTL");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x000e_7a12);
    let mut mutants = Vec::with_capacity(EVAL2_MUTANTS);
    let mut guard = 0;
    while mutants.len() < EVAL2_MUTANTS && guard < EVAL2_MUTANTS * 20 {
        guard += 1;
        let mut file = golden.clone();
        let n = 1 + rng.gen_range(0..2usize);
        if let Some(m) = file.module_mut(&problem.name) {
            if mutate_module(m, &mut rng, n).is_empty() {
                continue;
            }
        }
        let src = print_file(&file);
        let ok = correctbench_verilog::parse(&src)
            .ok()
            .and_then(|f| correctbench_verilog::elaborate(&f, &problem.name).ok())
            .is_some();
        if ok {
            mutants.push(src);
        }
    }
    mutants
}

/// The golden (trusted) testbench for a problem: canonical scenarios,
/// generated driver, checker compiled from the golden RTL.
pub fn golden_testbench(problem: &Problem, seed: u64) -> EvalTb {
    let scenarios = generate_scenarios(problem, seed ^ 0x601d);
    let driver = generate_driver(problem, &scenarios);
    let checker = CheckerArtifact::clean(match compile_module(&problem.golden_module()) {
        Ok(program) => program,
        Err(e) => {
            eprintln!("golden RTL failed to compile to checker IR: {e:?}");
            abort_job(AbortKind::ParseError)
        }
    });
    EvalTb {
        scenarios,
        driver,
        checker,
    }
}

/// Derives the full golden fixture bundle for one `(problem, eval
/// seed)` pair from scratch: parses the golden RTL, generates and
/// parses the golden testbench ([`golden_testbench`]), and generates
/// and parses the Eval2 mutant set ([`eval2_mutants`]). Pure in its
/// inputs — the cached and uncached evaluation paths produce identical
/// fixtures by construction.
pub fn derive_golden_artifacts(problem: &Problem, seed: u64) -> GoldenArtifacts {
    let tb = golden_testbench(problem, seed);
    let dut = parse_trusted(&problem.golden_rtl, "golden RTL");
    let driver = parse_trusted(&tb.driver, "golden driver");
    let mutants = eval2_mutants(problem, seed)
        .iter()
        .filter_map(|m| correctbench_verilog::parse(m).ok())
        .collect();
    GoldenArtifacts {
        dut,
        scenarios: tb.scenarios,
        driver_src: tb.driver,
        driver,
        checker: tb.checker.program,
        mutants,
    }
}

/// The golden fixture bundle, through the thread's golden-artifact
/// cache when one is installed (see
/// [`CacheStack`](correctbench_tbgen::CacheStack)): every `(method,
/// rep)` cell of a problem shares one eval seed, so only the first call
/// pays [`derive_golden_artifacts`]. With no cache installed this *is*
/// a fresh derivation.
pub fn golden_artifacts(problem: &Problem, seed: u64) -> Arc<GoldenArtifacts> {
    let Some(cache) = correctbench_tbgen::golden::active() else {
        return Arc::new(derive_golden_artifacts(problem, seed));
    };
    let key = GoldenKey::for_eval(problem, seed);
    if let Some(hit) = cache.get(&key) {
        return hit;
    }
    // Derivation happens outside the shard lock, so two workers racing
    // the first cell of a problem may both derive; the bundle is a pure
    // function of the key, so either insertion is correct.
    let derived = Arc::new(derive_golden_artifacts(problem, seed));
    cache.put(key, Arc::clone(&derived));
    derived
}

/// True when static analysis alone tells `mutant` apart from `dut`:
/// their [`LintReport`](correctbench_verilog::LintReport) signatures
/// differ. Such a mutant needs no simulation in the Eval2 sweep — any
/// lint-gated pipeline rejects it identically for every testbench, so
/// the generated and golden testbenches agree on it by construction.
/// Reports come through the worker's lint cache when one is installed.
pub fn statically_distinguished(
    dut: &correctbench_verilog::ast::SourceFile,
    mutant: &correctbench_verilog::ast::SourceFile,
) -> bool {
    correctbench_tbgen::lint_cached(dut).signature()
        != correctbench_tbgen::lint_cached(mutant).signature()
}

/// Evaluates `tb` for `problem`, returning the highest level reached.
/// `seed` fixes the Eval2 mutant set (use the same seed when comparing
/// methods).
pub fn evaluate(problem: &Problem, tb: &EvalTb, seed: u64) -> EvalLevel {
    let _span = correctbench_obs::span(correctbench_obs::Phase::Autoeval);
    // Eval0: syntax.
    let Some(driver) = correctbench_verilog::parse(&tb.driver).ok().filter(|f| {
        f.modules
            .iter()
            .any(|m| m.name == correctbench_tbgen::TB_MODULE)
    }) else {
        return EvalLevel::Failed;
    };
    if tb.checker.broken {
        return EvalLevel::Failed;
    }

    // One session per testbench, leased through the worker's session
    // pool when the harness installed one: checker compiled and record
    // bindings resolved once per (problem, checker) fingerprint pair —
    // across jobs, not merely across the Eval1 report and the Eval2
    // mutant runs of this call.
    let Ok(mut session) = acquire_session(problem, &tb.checker.program) else {
        return EvalLevel::Failed; // checker program the judge cannot run
    };

    // Under a worker's golden cache the whole fixture bundle is fetched
    // (or derived once) up front. Without one, stay lazy: an Eval0/Eval1
    // exit must not pay for mutants it will never sweep.
    let cached = correctbench_tbgen::golden::active()
        .is_some()
        .then(|| golden_artifacts(problem, seed));

    // Eval1: the golden DUT must elaborate with the driver and report pass.
    let local_dut;
    let golden_dut = match &cached {
        Some(golden) => &golden.dut,
        None => {
            local_dut = parse_trusted(&problem.golden_rtl, "golden RTL");
            &local_dut
        }
    };
    match tb_report(session.run(golden_dut, &driver, &tb.scenarios)) {
        Some(true) => {}
        Some(false) => return EvalLevel::Eval0,
        None => return EvalLevel::Failed, // driver does not even elaborate
    }

    // Eval2: agreement with the golden testbench over mutant DUTs — the
    // canonical mutant sweep: each session replays its own driver against
    // the shared, once-parsed mutant set.
    let golden = match cached {
        Some(golden) => golden,
        None => Arc::new(derive_golden_artifacts(problem, seed)),
    };
    if golden.mutants.is_empty() {
        return EvalLevel::Eval2; // no usable mutants: vacuous agreement
    }
    // Static pre-screen: mutants whose lint signature differs from the
    // golden DUT's count as agreements without simulation (see
    // [`statically_distinguished`]) and drop out of *both* sweeps.
    let dynamic: Vec<&correctbench_verilog::ast::SourceFile> = golden
        .mutants
        .iter()
        .filter(|m| !statically_distinguished(&golden.dut, m))
        .collect();
    let static_agree = golden.mutants.len() - dynamic.len();
    let mine = session.sweep_mutants(dynamic.iter().copied(), &driver, &tb.scenarios);
    let golden_reports: Vec<Option<bool>> = match acquire_session(problem, &golden.checker) {
        // The golden checker is identical for every (method, rep)
        // job of a problem, so under a harness context this lease is
        // the pool's steadiest customer.
        Ok(mut golden_session) => golden_session
            .sweep_mutants(dynamic.iter().copied(), &golden.driver, &golden.scenarios)
            .into_iter()
            .map(tb_report)
            .collect(),
        // Unreachable for compiler-derived golden checkers; degrade
        // to per-run "no report" like the interpreter would.
        Err(_) => vec![None; dynamic.len()],
    };
    let mut agree = static_agree;
    let mut counted = static_agree;
    for (mine, golden) in mine.into_iter().zip(golden_reports) {
        match (tb_report(mine), golden) {
            (Some(a), Some(b)) => {
                counted += 1;
                if a == b {
                    agree += 1;
                }
            }
            (None, None) => {
                counted += 1;
                agree += 1;
            }
            _ => counted += 1,
        }
    }
    if counted == 0 || (agree as f64 / counted as f64) >= EVAL2_AGREEMENT {
        EvalLevel::Eval2
    } else {
        EvalLevel::Eval1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use correctbench_dataset::problem;

    #[test]
    fn golden_testbench_reaches_eval2() {
        for name in ["alu_8", "counter_8", "seq_det_101", "mux6_4"] {
            let p = problem(name).expect("problem");
            let tb = golden_testbench(&p, 3);
            assert_eq!(evaluate(&p, &tb, 3), EvalLevel::Eval2, "{name}");
        }
    }

    #[test]
    fn broken_driver_fails() {
        let p = problem("and_8").expect("problem");
        let mut tb = golden_testbench(&p, 3);
        tb.driver = tb.driver.replace("endmodule", "");
        assert_eq!(evaluate(&p, &tb, 3), EvalLevel::Failed);
    }

    #[test]
    fn broken_checker_fails() {
        let p = problem("and_8").expect("problem");
        let mut tb = golden_testbench(&p, 3);
        tb.checker.broken = true;
        assert_eq!(evaluate(&p, &tb, 3), EvalLevel::Failed);
    }

    #[test]
    fn buggy_checker_stops_at_eval0() {
        use rand::SeedableRng;
        let p = problem("alu_8").expect("problem");
        let mut stopped = 0;
        for seed in 0..10u64 {
            let mut tb = golden_testbench(&p, 3);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            correctbench_checker::mutate_ir(&mut tb.checker.program, &mut rng, 2);
            let lvl = evaluate(&p, &tb, 3);
            if lvl <= EvalLevel::Eval0 {
                stopped += 1;
            }
        }
        // Most 2-defect checkers should disagree with the golden DUT.
        assert!(stopped >= 7, "only {stopped}/10 buggy checkers caught");
    }

    #[test]
    fn thin_testbench_passes_eval1_fails_eval2() {
        // Keep only the first scenario: the golden DUT still "passes",
        // but mutants are no longer killed like the golden TB kills them.
        let p = problem("alu_8").expect("problem");
        let mut caught_gap = false;
        for seed in 0..8u64 {
            let mut tb = golden_testbench(&p, seed);
            tb.scenarios.scenarios.truncate(1);
            tb.driver = correctbench_tbgen::generate_driver(&p, &tb.scenarios);
            let lvl = evaluate(&p, &tb, seed);
            assert!(lvl >= EvalLevel::Eval1, "thin TB must still pass Eval1");
            if lvl == EvalLevel::Eval1 {
                caught_gap = true;
            }
        }
        assert!(
            caught_gap,
            "a one-scenario TB should fail Eval2 for at least one mutant set"
        );
    }

    #[test]
    fn mutants_are_deterministic_and_valid() {
        let p = problem("counter_8").expect("problem");
        let a = eval2_mutants(&p, 9);
        let b = eval2_mutants(&p, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), EVAL2_MUTANTS);
        for m in &a {
            correctbench_verilog::parse(m).expect("mutant parses");
        }
    }

    #[test]
    fn golden_cache_is_transparent_and_hits_on_reuse() {
        let p = problem("alu_8").expect("problem");
        let tb = golden_testbench(&p, 5);
        let uncached = evaluate(&p, &tb, 5);
        let stack = correctbench_tbgen::CacheStack::full();
        let _guard = stack.install();
        assert_eq!(
            evaluate(&p, &tb, 5),
            uncached,
            "cache must not change levels"
        );
        let s = stack.golden_cache().expect("layer").stats();
        assert_eq!(
            (s.hits, s.misses, s.entries),
            (0, 1, 1),
            "first cell derives"
        );
        assert_eq!(evaluate(&p, &tb, 5), uncached);
        let s = stack.golden_cache().expect("layer").stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1), "second cell hits");
        // A different eval seed is a different derivation.
        let tb7 = golden_testbench(&p, 7);
        evaluate(&p, &tb7, 7);
        assert_eq!(stack.golden_cache().expect("layer").stats().misses, 2);
    }

    #[test]
    fn cached_and_derived_bundles_are_identical() {
        let p = problem("counter_8").expect("problem");
        let derived = derive_golden_artifacts(&p, 9);
        let cache = correctbench_tbgen::GoldenCache::new();
        let _guard = cache.install();
        let first = golden_artifacts(&p, 9);
        let second = golden_artifacts(&p, 9);
        assert!(Arc::ptr_eq(&first, &second), "second call shares the entry");
        assert_eq!(first.driver_src, derived.driver_src);
        assert_eq!(first.scenarios, derived.scenarios);
        assert_eq!(first.dut, derived.dut);
        assert_eq!(first.driver, derived.driver);
        assert_eq!(first.mutants, derived.mutants);
        assert_eq!(first.mutants.len(), EVAL2_MUTANTS);
    }

    #[test]
    fn dropped_driver_mutant_is_statically_distinguished() {
        // Deleting a register's driving statement changes the dataflow
        // shape (undriven/unused findings appear), so the lint
        // signatures diverge and the mutant never reaches a simulator.
        let p = problem("counter_8").expect("problem");
        let dut = parse_trusted(&p.golden_rtl, "golden RTL");
        let mut mutant = dut.clone();
        let m = mutant.module_mut(&p.name).expect("module");
        for item in &mut m.items {
            if let correctbench_verilog::ast::Item::Always(always) = item {
                always.body = correctbench_verilog::ast::Stmt::Block(Vec::new());
            }
        }
        assert!(statically_distinguished(&dut, &mutant));
        // Identical sources carry identical signatures: the pre-screen
        // must never fabricate agreement for an unchanged DUT.
        assert!(!statically_distinguished(&dut, &dut.clone()));
    }

    #[test]
    fn levels_ordered() {
        assert!(EvalLevel::Failed < EvalLevel::Eval0);
        assert!(EvalLevel::Eval0 < EvalLevel::Eval1);
        assert!(EvalLevel::Eval1 < EvalLevel::Eval2);
    }
}
