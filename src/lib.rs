//! Facade crate for the CorrectBench reproduction workspace.
//!
//! Re-exports every subsystem under one roof so examples and integration
//! tests can `use correctbench_suite::...`. See the individual crates for
//! full documentation:
//!
//! * [`verilog`] — Verilog front end + event-driven simulator;
//! * [`checker`] — checker IR (the Python-checker analog);
//! * [`dataset`] — the 156-problem task suite;
//! * [`llm`] — LLM client abstraction + calibrated simulation;
//! * [`tbgen`] — scenarios, driver codegen, hybrid-TB runner;
//! * [`core`] — the CorrectBench pipeline (generator/validator/corrector/agent);
//! * [`autoeval`] — Eval0/1/2 harness;
//! * [`store`] — the persistent content-addressed outcome store behind
//!   `correctbench-run --store` (warm restarts across processes);
//! * [`harness`] — the parallel evaluation engine (run plans, worker
//!   pool, content-addressed simulation cache, JSONL artifacts).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use correctbench as core;
pub use correctbench_autoeval as autoeval;
pub use correctbench_checker as checker;
pub use correctbench_dataset as dataset;
pub use correctbench_harness as harness;
pub use correctbench_llm as llm;
pub use correctbench_store as store;
pub use correctbench_tbgen as tbgen;
pub use correctbench_verilog as verilog;
