//! The paper's Fig. 5 scenario on the `shift18` arithmetic shifter: a
//! testbench whose checker mishandles the arithmetic right shift is
//! caught by the RS-matrix validator (the wrong scenarios light up as red
//! columns) and repaired by the two-stage corrector using the bug report.
//!
//! ```text
//! cargo run --release --example validate_and_correct
//! ```

use correctbench_suite::checker::compile_module;
use correctbench_suite::core::validator::generate_rtl_group;
use correctbench_suite::core::{build_rs_matrix, correct, judge, Config, HybridTb, Verdict};
use correctbench_suite::llm::{CheckerArtifact, ModelKind, ModelProfile, SimulatedLlm};
use correctbench_suite::tbgen::{generate_driver, generate_scenarios};

fn main() {
    let problem = correctbench_suite::dataset::problem("shift18").expect("shift18 in dataset");
    let cfg = Config::default();

    // A testbench whose checker carries injected defects — the stand-in
    // for the LLM's buggy Python checker in Fig. 5.
    let scenarios = generate_scenarios(&problem, 99);
    let driver = generate_driver(&problem, &scenarios);
    let mut checker =
        CheckerArtifact::clean(compile_module(&problem.golden_module()).expect("golden checker"));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let defects = correctbench_suite::checker::mutate_ir(&mut checker.program, &mut rng, 2);
    println!("injected checker defects:");
    for d in &defects {
        println!("  - {}", d.description);
    }
    checker.defects = defects
        .into_iter()
        .map(|mutation| correctbench_suite::llm::Defect {
            mutation,
            fixable: true,
        })
        .collect();
    let tb = HybridTb {
        scenarios,
        driver,
        checker,
    };

    // Validate: build the RS matrix from 20 imperfect RTL generations.
    let mut llm = SimulatedLlm::new(ModelProfile::for_model(ModelKind::Gpt4o), 77);
    let rtls = generate_rtl_group(&problem, &mut llm, &cfg);
    let matrix = build_rs_matrix(&problem, &tb, &rtls);
    println!(
        "\nRS matrix ({} RTLs x {} scenarios):",
        matrix.num_rtls(),
        matrix.num_scenarios()
    );
    print!("{}", matrix.to_ascii());

    let verdict = judge(&matrix, &cfg);
    match &verdict {
        Verdict::Correct => {
            println!("validator says: correct (the defects were unobservable this time)");
        }
        Verdict::Wrong(report) => {
            println!("validator says: WRONG");
            println!("  wrong scenarios     : {:?}", report.wrong);
            println!("  correct scenarios   : {:?}", report.correct);
            println!("  uncertain scenarios : {:?}", report.uncertain);

            // Correct using the bug information (two-stage conversation).
            let fixed = correct(&problem, &tb, report, &mut llm);
            println!(
                "\nafter correction: {} of {} defects remain",
                fixed.checker.defects.len(),
                tb.checker.defects.len()
            );
            let matrix2 = build_rs_matrix(&problem, &fixed, &rtls);
            let verdict2 = judge(&matrix2, &cfg);
            println!(
                "re-validation verdict: {}",
                if verdict2.is_correct() {
                    "correct"
                } else {
                    "still wrong"
                }
            );
            print!("{}", matrix2.to_ascii());
        }
    }
}
