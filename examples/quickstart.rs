//! Quickstart: run the full CorrectBench loop on one task and evaluate
//! the resulting testbench.
//!
//! ```text
//! cargo run --release --example quickstart [problem-name]
//! ```

use correctbench_suite::autoeval::{evaluate, EvalTb};
use correctbench_suite::core::{run_correctbench, Config};
use correctbench_suite::llm::{LlmClient, ModelKind, ModelProfile, SimulatedLlm};
use rand::SeedableRng;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "shift18".to_string());
    let problem = correctbench_suite::dataset::problem(&name)
        .unwrap_or_else(|| panic!("unknown problem `{name}`; see `dataset::all_problems()`"));

    println!(
        "== task: {} ({:?}, {:?}) ==",
        problem.name, problem.kind, problem.difficulty
    );
    println!("{}\n", problem.spec);

    let cfg = Config::default();
    let mut llm = SimulatedLlm::new(ModelProfile::for_model(ModelKind::Gpt4o), 2025);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2025);
    let outcome = run_correctbench(&problem, &mut llm, &cfg, &mut rng);

    println!("pipeline finished:");
    println!("  actions            : {:?}", outcome.trace);
    println!("  corrections        : {}", outcome.corrections);
    println!("  reboots            : {}", outcome.reboots);
    println!("  validator accepted : {}", outcome.validated);
    println!(
        "  tokens             : {} in / {} out over {} requests",
        outcome.tokens.input_tokens, outcome.tokens.output_tokens, outcome.tokens.requests
    );

    let tb = EvalTb {
        scenarios: outcome.tb.scenarios.clone(),
        driver: outcome.tb.driver.clone(),
        checker: outcome.tb.checker.clone(),
    };
    let level = evaluate(&problem, &tb, 2025);
    println!("  AutoEval level     : {}", level.name());

    println!("\ngenerated driver (first 30 lines):");
    for line in outcome.tb.driver.lines().take(30) {
        println!("  {line}");
    }
    let _ = llm.usage();
}
