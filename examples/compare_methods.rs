//! Compares the three generation methods (CorrectBench / AutoBench /
//! direct baseline) on a handful of tasks — a miniature Table I.
//!
//! ```text
//! cargo run --release --example compare_methods
//! ```

use correctbench_suite::autoeval::{evaluate, EvalTb};
use correctbench_suite::core::{run_method, Config, Method};
use correctbench_suite::llm::{ModelKind, ModelProfile, SimulatedLlm};
use rand::SeedableRng;

fn main() {
    let names = [
        "adder_8",
        "mux6_4",
        "priority_enc_8",
        "counter_8",
        "shift18",
        "seq_det_101",
    ];
    let cfg = Config::default();

    println!(
        "{:<16} {:<14} {:<12} {:<10} (AutoEval level per method)",
        "task", "CorrectBench", "AutoBench", "Baseline"
    );
    for name in names {
        let problem = correctbench_suite::dataset::problem(name).expect("known problem");
        let mut cells = Vec::new();
        for (i, method) in Method::ALL.iter().enumerate() {
            let mut llm =
                SimulatedLlm::new(ModelProfile::for_model(ModelKind::Gpt4o), 42 + i as u64);
            let mut rng = rand::rngs::StdRng::seed_from_u64(42 + i as u64);
            let outcome = run_method(*method, &problem, &mut llm, &cfg, &mut rng);
            let tb = EvalTb {
                scenarios: outcome.tb.scenarios.clone(),
                driver: outcome.tb.driver.clone(),
                checker: outcome.tb.checker.clone(),
            };
            cells.push(evaluate(&problem, &tb, 42).name().to_string());
        }
        println!(
            "{:<16} {:<14} {:<12} {:<10}",
            name, cells[0], cells[1], cells[2]
        );
    }
    println!("\nEval2 = discriminates like the golden testbench (the paper's pass metric).");
}
