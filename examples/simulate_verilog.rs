//! Uses the Verilog substrate standalone: parse, elaborate and simulate a
//! small self-checking testbench and print its `$display` output — the
//! same engine every CorrectBench experiment runs on.
//!
//! ```text
//! cargo run --release --example simulate_verilog
//! ```

use correctbench_suite::verilog::run_source;

const SRC: &str = r#"
module gray_counter (
    input clk,
    input rst,
    output [3:0] g
);
    reg [3:0] b;
    always @(posedge clk) begin
        if (rst) b <= 4'd0;
        else b <= b + 4'd1;
    end
    assign g = b ^ (b >> 1);
endmodule

module tb;
    reg clk = 0;
    reg rst;
    wire [3:0] g;
    gray_counter dut (.clk(clk), .rst(rst), .g(g));
    always #5 clk = ~clk;
    initial begin
        rst = 1;
        #10 rst = 0;
        repeat (8) begin
            #10 $display("t=%0t gray=%b", $time, g);
        end
        $finish;
    end
endmodule
"#;

fn main() {
    let out = run_source(SRC, "tb").expect("simulation succeeds");
    println!(
        "captured {} lines (finished: {}):",
        out.lines.len(),
        out.finished
    );
    for line in &out.lines {
        println!("  {line}");
    }
    // Successive Gray codes differ in exactly one bit.
    let codes: Vec<u32> = out
        .lines
        .iter()
        .map(|l| u32::from_str_radix(l.rsplit('=').next().expect("value"), 2).expect("binary"))
        .collect();
    for w in codes.windows(2) {
        assert_eq!((w[0] ^ w[1]).count_ones(), 1, "gray property violated");
    }
    println!(
        "gray single-bit-change property verified across {} steps",
        codes.len() - 1
    );
}
