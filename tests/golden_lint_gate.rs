//! The golden dataset is lint-clean at deny level — dataset-wide.
//!
//! Every golden DUT, and every golden DUT combined with its generated
//! testbench driver, must carry **zero** deny-level diagnostics after
//! the problem's allowlist is applied: the `--lint=gate` mode would
//! otherwise reject trusted fixtures, and a real defect in a golden
//! design would silently bias every method it evaluates. Intentional
//! warning-level findings are pinned too, so a new finding (or a lost
//! allowlist entry) shows up as a reviewed diff, not drift.

use correctbench_suite::dataset::all_problems;
use correctbench_suite::tbgen::{generate_driver, generate_scenarios};
use correctbench_suite::verilog::{lint_file, parse, Severity};

#[test]
fn golden_duts_and_testbenches_carry_no_deny_level_findings() {
    let problems = all_problems();
    assert_eq!(problems.len(), 156);
    let mut deny = Vec::new();
    let mut allowlisted = 0usize;
    for p in &problems {
        let scenarios = generate_scenarios(p, 0xa9ee);
        let driver = generate_driver(p, &scenarios);
        let combined = format!("{}\n{}", p.golden_rtl, driver);
        for (what, src) in [
            ("dut", p.golden_rtl.as_str()),
            ("dut+tb", combined.as_str()),
        ] {
            let file = parse(src).unwrap_or_else(|e| panic!("{} {what} parses: {e}", p.name));
            for d in lint_file(&file).diagnostics {
                if p.lint_allowed(d.rule.name(), &d.signal) {
                    allowlisted += 1;
                    continue;
                }
                if d.severity == Severity::Error {
                    deny.push(format!(
                        "{} ({what}): {} `{}`",
                        p.name,
                        d.rule.name(),
                        d.signal
                    ));
                }
            }
        }
    }
    assert!(
        deny.is_empty(),
        "deny-level lint findings on golden fixtures:\n{}",
        deny.join("\n")
    );
    // cmd_fsm intentionally parks two signals (allowlisted in its
    // problem spec); they appear in both the dut and dut+tb passes.
    assert_eq!(allowlisted, 4, "allowlist coverage drifted");
}
