//! Cross-crate keystone test: for every one of the 156 dataset problems,
//! the event-driven simulation of the golden RTL and the checker-IR
//! interpretation of the same design agree on every scenario — i.e. the
//! golden testbench passes Eval1 dataset-wide. This pins the two
//! independent execution semantics (simulator vs. checker interpreter)
//! to each other.

use correctbench_suite::checker::compile_module;
use correctbench_suite::dataset::all_problems;
use correctbench_suite::tbgen::{generate_driver, generate_scenarios, run_testbench};

#[test]
fn golden_testbench_passes_on_all_156_problems() {
    let problems = all_problems();
    assert_eq!(problems.len(), 156);
    let mut failures = Vec::new();
    for p in &problems {
        let scenarios = generate_scenarios(p, 0xa9ee);
        let driver = generate_driver(p, &scenarios);
        let checker = match compile_module(&p.golden_module()) {
            Ok(c) => c,
            Err(e) => {
                failures.push(format!("{}: checker compile: {e}", p.name));
                continue;
            }
        };
        match run_testbench(&p.golden_rtl, &driver, &checker, p, &scenarios) {
            Ok(run) => {
                if !run.all_pass() {
                    failures.push(format!(
                        "{}: scenarios {:?} disagree",
                        p.name,
                        run.failing_scenarios()
                    ));
                }
            }
            Err(e) => failures.push(format!("{}: run: {e}", p.name)),
        }
    }
    assert!(
        failures.is_empty(),
        "golden disagreements on {} problems:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn golden_agreement_across_multiple_seeds() {
    // A second seed catches stimulus-dependent divergence the first seed
    // might miss; restricted to a representative slice for runtime.
    let names = [
        "alu_16",
        "clz_8",
        "gray_decode_8",
        "shift18",
        "bcd_counter_8",
        "seq_det_1101",
        "vending_15",
        "arbiter_2",
        "traffic_light",
        "debounce_3",
        "timer_en_8",
        "lfsr_8",
    ];
    for name in names {
        let p = correctbench_suite::dataset::problem(name).expect("known problem");
        let checker = compile_module(&p.golden_module()).expect("checker");
        for seed in [1u64, 2, 3, 4, 5] {
            let scenarios = generate_scenarios(&p, seed);
            let driver = generate_driver(&p, &scenarios);
            let run = run_testbench(&p.golden_rtl, &driver, &checker, &p, &scenarios)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            assert!(
                run.all_pass(),
                "{name} seed {seed}: scenarios {:?} disagree",
                run.failing_scenarios()
            );
        }
    }
}
