//! End-to-end pipeline integration: runs all three methods over a mixed
//! task slice and checks the paper's *orderings* (not absolute numbers):
//! CorrectBench ≥ AutoBench ≥ Baseline on Eval2, and the attribution
//! invariants behind Table III.

use correctbench_suite::autoeval::{evaluate, EvalLevel, EvalTb};
use correctbench_suite::core::{run_method, Config, Method};
use correctbench_suite::llm::{ModelKind, ModelProfile, SimulatedLlm};
use rand::SeedableRng;

const TASKS: [&str; 5] = ["adder_8", "alu_8", "counter_8", "sipo_8", "seq_det_101"];

fn eval2_count(method: Method, seeds: std::ops::Range<u64>) -> usize {
    // A reduced reboot budget keeps debug-mode runtime sane; the ordering
    // under test is budget-independent.
    let cfg = Config {
        max_reboots: 2,
        ..Config::default()
    };
    let mut passed = 0;
    for name in TASKS {
        let problem = correctbench_suite::dataset::problem(name).expect("known problem");
        for seed in seeds.clone() {
            let mut llm = SimulatedLlm::new(ModelProfile::for_model(ModelKind::Gpt4o), seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
            let out = run_method(method, &problem, &mut llm, &cfg, &mut rng);
            let tb = EvalTb {
                scenarios: out.tb.scenarios.clone(),
                driver: out.tb.driver.clone(),
                checker: out.tb.checker.clone(),
            };
            if evaluate(&problem, &tb, 1) >= EvalLevel::Eval2 {
                passed += 1;
            }
        }
    }
    passed
}

#[test]
fn method_ordering_holds() {
    let cb = eval2_count(Method::CorrectBench, 0..2);
    let ab = eval2_count(Method::AutoBench, 0..2);
    let base = eval2_count(Method::Baseline, 0..2);
    assert!(
        cb >= ab,
        "CorrectBench ({cb}) must not lose to AutoBench ({ab})"
    );
    assert!(
        ab >= base,
        "AutoBench ({ab}) must not lose to the baseline ({base})"
    );
    assert!(
        cb > base,
        "CorrectBench ({cb}) must strictly beat the baseline ({base})"
    );
}

#[test]
fn correctbench_outcome_invariants() {
    let cfg = Config::default();
    for name in ["alu_8", "seq_det_101"] {
        let problem = correctbench_suite::dataset::problem(name).expect("known problem");
        for seed in 0..2u64 {
            let mut llm = SimulatedLlm::new(ModelProfile::for_model(ModelKind::Gpt4o), seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let out = run_method(Method::CorrectBench, &problem, &mut llm, &cfg, &mut rng);
            // The trace always ends with a terminal action, and Pass is
            // reserved for a validated testbench.
            use correctbench_suite::core::Action;
            let last = out.trace.last().copied();
            assert!(matches!(last, Some(Action::Pass | Action::GiveUp)));
            assert_eq!(last == Some(Action::Pass), out.validated);
            assert_eq!(out.gave_up(), !out.validated);
            // Budgets respected.
            assert!(out.corrections <= cfg.max_corrections);
            assert!(out.reboots <= cfg.max_reboots);
            // Tokens were spent.
            assert!(out.tokens.requests >= 3, "{name}/{seed}");
        }
    }
}

#[test]
fn validated_testbenches_usually_pass_eval2() {
    // The validator's acceptance should be a strong signal: among
    // validated outcomes, most pass Eval2 (the paper's 88.85% validation
    // accuracy makes this the expected behaviour).
    let cfg = Config {
        max_reboots: 2,
        ..Config::default()
    };
    let mut validated = 0;
    let mut validated_and_passed = 0;
    for name in TASKS {
        let problem = correctbench_suite::dataset::problem(name).expect("known problem");
        for seed in 10..12u64 {
            let mut llm = SimulatedLlm::new(ModelProfile::for_model(ModelKind::Gpt4o), seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let out = run_method(Method::CorrectBench, &problem, &mut llm, &cfg, &mut rng);
            if !out.validated {
                continue;
            }
            validated += 1;
            let tb = EvalTb {
                scenarios: out.tb.scenarios.clone(),
                driver: out.tb.driver.clone(),
                checker: out.tb.checker.clone(),
            };
            if evaluate(&problem, &tb, 1) >= EvalLevel::Eval2 {
                validated_and_passed += 1;
            }
        }
    }
    assert!(validated > 0, "nothing validated at all");
    assert!(
        validated_and_passed * 10 >= validated * 6,
        "only {validated_and_passed}/{validated} validated TBs passed Eval2"
    );
}
